// Serve-daemon robustness suite: protocol validation, crash-safe ledger
// replay, retry/timeout/quarantine supervision, admission control, the
// fingerprint result cache, and the socket-free server front end.  Every
// scheduler test uses synthetic runners so failure paths are exercised
// deterministically in milliseconds.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/shutdown.hpp"
#include "common/snapshot.hpp"
#include "serve/ledger.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"

namespace nocs::serve {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Limits tuned so retries/timeouts resolve in milliseconds.
ServeLimits fast_limits() {
  ServeLimits l;
  l.workers = 2;
  l.max_attempts = 3;
  l.task_timeout_ms = 0;
  l.backoff_base_ms = 1;
  l.backoff_cap_ms = 4;
  l.supervise_every_ms = 2;
  l.wait_default_ms = 10000;
  return l;
}

JobSpec selftest_spec(int tasks, int sleep_ms = 1) {
  JobSpec spec;
  spec.kind = "selftest";
  spec.params.set("tasks", tasks);
  spec.params.set("sleep_ms", sleep_ms);
  return spec;
}

/// Runner that records which task indices it completed.
struct CountingRunner {
  std::mutex mu;
  std::vector<std::size_t> ran;

  TaskRunner fn() {
    return [this](const JobSpec&, const std::string&, std::size_t index,
                  int attempt, const CancellationToken&) {
      {
        const std::lock_guard<std::mutex> lock(mu);
        ran.push_back(index);
      }
      json::Value v = json::Value::object();
      v.set("task", static_cast<double>(index));
      v.set("attempt", attempt);
      return TaskOutcome::ok(std::move(v));
    };
  }

  std::vector<std::size_t> sorted() {
    const std::lock_guard<std::mutex> lock(mu);
    std::vector<std::size_t> v = ran;
    std::sort(v.begin(), v.end());
    return v;
  }
};

// --- protocol ---------------------------------------------------------------

TEST(Protocol, ParsesEveryOp) {
  for (const char* op : {"status", "metrics", "drain", "ping"}) {
    const ParseResult r =
        parse_request(std::string("{\"op\":\"") + op + "\"}");
    ASSERT_TRUE(r.ok) << op << ": " << r.error;
    EXPECT_EQ(r.request.op, op);
  }
  const ParseResult submit = parse_request(
      "{\"op\":\"submit\",\"kind\":\"selftest\",\"params\":{\"tasks\":3},"
      "\"priority\":\"high\"}");
  ASSERT_TRUE(submit.ok) << submit.error;
  EXPECT_EQ(submit.request.spec.kind, "selftest");
  EXPECT_EQ(submit.request.spec.priority, TaskPriority::kHigh);
  EXPECT_EQ(task_count(submit.request.spec), 3u);

  const ParseResult wait = parse_request(
      "{\"op\":\"wait\",\"job\":\"job-1\",\"timeout_ms\":250}");
  ASSERT_TRUE(wait.ok) << wait.error;
  EXPECT_EQ(wait.request.job_id, "job-1");
  EXPECT_EQ(wait.request.timeout_ms, 250u);
}

TEST(Protocol, RejectsMalformedRequests) {
  const char* bad[] = {
      "",                                     // empty
      "not json",                             // parse error
      "[1,2,3]",                              // not an object
      "{\"op\":42}",                          // op wrong type
      "{\"op\":\"launch\"}",                  // unknown op
      "{\"op\":\"submit\"}",                  // missing kind
      "{\"op\":\"submit\",\"kind\":\"x\"}",   // unknown kind
      "{\"op\":\"submit\",\"kind\":\"sweep\",\"params\":17}",
      "{\"op\":\"submit\",\"kind\":\"sweep\",\"params\":{\"a\":[1]}}",
      "{\"op\":\"submit\",\"kind\":\"sweep\","
      "\"params\":{\"rates\":\"nope\"}}",
      "{\"op\":\"submit\",\"kind\":\"sweep\","
      "\"params\":{\"rates\":\"0.5:-0.1:0.1\"}}",
      "{\"op\":\"submit\",\"kind\":\"selftest\",\"params\":{\"tasks\":0}}",
      "{\"op\":\"submit\",\"kind\":\"selftest\","
      "\"params\":{\"tasks\":99999}}",
      "{\"op\":\"submit\",\"kind\":\"selftest\",\"priority\":\"urgent\"}",
      "{\"op\":\"wait\"}",                    // missing job
      "{\"op\":\"wait\",\"job\":\"\"}",       // empty job
      "{\"op\":\"wait\",\"job\":\"j\",\"timeout_ms\":-5}",
  };
  for (const char* line : bad) {
    const ParseResult r = parse_request(line);
    EXPECT_FALSE(r.ok) << "accepted: " << line;
    EXPECT_FALSE(r.error.empty());
  }
}

TEST(Protocol, FingerprintIsCanonical) {
  JobSpec a;
  a.kind = "sweep";
  a.params.set("level", 8);
  a.params.set("rates", "0.05:0.05:0.2");
  JobSpec b;
  b.kind = "sweep";
  b.params.set("rates", "0.05:0.05:0.2");  // different key order
  b.params.set("level", "8");              // string vs number
  b.priority = TaskPriority::kHigh;        // priority never changes results
  EXPECT_EQ(fingerprint(a), fingerprint(b));

  JobSpec c = a;
  c.params.set("seed", 2);
  EXPECT_NE(fingerprint(a), fingerprint(c));
  JobSpec d = a;
  d.kind = "simulate";
  EXPECT_NE(fingerprint(a), fingerprint(d));
}

TEST(Protocol, SpecJsonRoundTrips) {
  JobSpec spec;
  spec.kind = "sweep";
  spec.params.set("level", 8);
  spec.params.set("rates", "0.05:0.05:0.2");
  spec.priority = TaskPriority::kLow;
  const JobSpec back = spec_from_json(spec_to_json(spec));
  EXPECT_EQ(back.kind, spec.kind);
  EXPECT_EQ(back.priority, spec.priority);
  EXPECT_EQ(fingerprint(back), fingerprint(spec));
  EXPECT_THROW(spec_from_json(json::Value::parse("{\"kind\":\"x\"}")),
               std::invalid_argument);
  EXPECT_THROW(spec_from_json(json::Value::parse("[]")),
               std::invalid_argument);
}

TEST(Protocol, RatesGrammar) {
  const std::vector<double> r = parse_rates("0.1:0.1:0.3");
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r.front(), 0.1);
  EXPECT_THROW(parse_rates("0.1:0:0.3"), std::invalid_argument);
  EXPECT_THROW(parse_rates("0.3:0.1:0.1"), std::invalid_argument);
  EXPECT_THROW(parse_rates("xyz"), std::invalid_argument);

  JobSpec sweep;
  sweep.kind = "sweep";
  sweep.params.set("rates", "0.05:0.05:0.5");
  EXPECT_EQ(task_count(sweep), 10u);
  JobSpec sim;
  sim.kind = "simulate";
  EXPECT_EQ(task_count(sim), 1u);
}

// --- scheduler --------------------------------------------------------------

TEST(Scheduler, RunsJobAndServesCachedResubmission) {
  CountingRunner counting;
  JobScheduler sched(fast_limits(), counting.fn(), nullptr, nullptr);
  const JobSpec spec = selftest_spec(4);

  const SubmitOutcome first = sched.submit(spec);
  ASSERT_EQ(first.code, SubmitOutcome::Code::kAccepted);
  EXPECT_EQ(first.job_id, "job-1");
  const json::Value status = sched.wait(first.job_id, 0);
  ASSERT_EQ(status.at("state").as_string(), "done")
      << status.dump();
  EXPECT_EQ(status.at("result").at("tasks").size(), 4u);
  EXPECT_EQ(counting.sorted(), (std::vector<std::size_t>{0, 1, 2, 3}));

  // Identical spec (even with another priority): replayed from the cache
  // bit-identically, without touching the runner again.
  JobSpec again = spec;
  again.priority = TaskPriority::kHigh;
  const SubmitOutcome second = sched.submit(again);
  ASSERT_EQ(second.code, SubmitOutcome::Code::kCached);
  EXPECT_EQ(second.job_id, first.job_id);
  EXPECT_EQ(second.cached.dump(), status.at("result").dump());
  EXPECT_EQ(counting.ran.size(), 4u);

  const json::Value s = sched.status();
  EXPECT_EQ(s.at("counters").at("cache_hits").as_number(), 1.0);
}

TEST(Scheduler, UnknownJobIs404) {
  CountingRunner counting;
  JobScheduler sched(fast_limits(), counting.fn(), nullptr, nullptr);
  const json::Value v = sched.job_status("job-99");
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("code").as_number(), kCodeNotFound);
}

TEST(Scheduler, AdmissionControlRejectsExplicitly) {
  std::atomic<bool> release{false};
  auto gate = [&](const JobSpec&, const std::string&, std::size_t, int,
                  const CancellationToken& cancel) {
    while (!release.load() && !cancel.stop_requested())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return TaskOutcome::ok(json::Value::object());
  };
  ServeLimits limits = fast_limits();
  limits.max_jobs = 1;
  limits.max_pending_tasks = 4;
  JobScheduler sched(limits, gate, nullptr, nullptr);

  ASSERT_EQ(sched.submit(selftest_spec(1)).code,
            SubmitOutcome::Code::kAccepted);
  // Job queue full: a *different* spec bounces with a 429-style reject.
  const SubmitOutcome full = sched.submit(selftest_spec(2));
  EXPECT_EQ(full.code, SubmitOutcome::Code::kRejected);
  EXPECT_FALSE(full.error.empty());
  EXPECT_EQ(sched.status().at("counters").at("rejected").as_number(), 1.0);
  release.store(true);

  // Task bound: one job whose expansion exceeds the pending budget.
  ServeLimits tiny = fast_limits();
  tiny.max_pending_tasks = 2;
  CountingRunner counting;
  JobScheduler small(tiny, counting.fn(), nullptr, nullptr);
  EXPECT_EQ(small.submit(selftest_spec(3)).code,
            SubmitOutcome::Code::kRejected);
}

TEST(Scheduler, RetriesWithBackoffThenSucceeds) {
  std::atomic<int> calls{0};
  auto flaky = [&](const JobSpec&, const std::string&, std::size_t,
                   int attempt, const CancellationToken&) {
    ++calls;
    if (attempt < 3) return TaskOutcome::failed("induced");
    json::Value v = json::Value::object();
    v.set("attempt", attempt);
    return TaskOutcome::ok(std::move(v));
  };
  JobScheduler sched(fast_limits(), flaky, nullptr, nullptr);
  const SubmitOutcome out = sched.submit(selftest_spec(1));
  ASSERT_EQ(out.code, SubmitOutcome::Code::kAccepted);
  const json::Value status = sched.wait(out.job_id, 0);
  ASSERT_EQ(status.at("state").as_string(), "done") << status.dump();
  EXPECT_EQ(status.at("result").at("tasks").at(0).at("attempt").as_number(),
            3.0);
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(sched.status().at("counters").at("retries").as_number(), 2.0);
}

TEST(Scheduler, QuarantinesAfterMaxAttempts) {
  std::atomic<int> calls{0};
  auto broken = [&](const JobSpec&, const std::string&, std::size_t, int,
                    const CancellationToken&) {
    ++calls;
    return TaskOutcome::failed("always broken");
  };
  ServeLimits limits = fast_limits();
  limits.max_attempts = 2;
  JobScheduler sched(limits, broken, nullptr, nullptr);
  const SubmitOutcome out = sched.submit(selftest_spec(1));
  const json::Value status = sched.wait(out.job_id, 0);
  ASSERT_EQ(status.at("state").as_string(), "quarantined") << status.dump();
  EXPECT_NE(status.at("error").as_string().find("always broken"),
            std::string::npos);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(sched.status().at("jobs").at("quarantined").as_number(), 1.0);
  // A quarantined job never seeds the cache: resubmitting retries fresh.
  EXPECT_EQ(sched.submit(selftest_spec(1)).code,
            SubmitOutcome::Code::kAccepted);
}

TEST(Scheduler, WatchdogTimesOutHungTasksThenQuarantines) {
  auto hung = [](const JobSpec&, const std::string&, std::size_t, int,
                 const CancellationToken& cancel) {
    while (!cancel.stop_requested())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return TaskOutcome::cancelled();
  };
  ServeLimits limits = fast_limits();
  limits.max_attempts = 2;
  limits.task_timeout_ms = 25;
  JobScheduler sched(limits, hung, nullptr, nullptr);
  const SubmitOutcome out = sched.submit(selftest_spec(1));
  const json::Value status = sched.wait(out.job_id, 0);
  ASSERT_EQ(status.at("state").as_string(), "quarantined") << status.dump();
  EXPECT_NE(status.at("error").as_string().find("timed out"),
            std::string::npos);
  EXPECT_EQ(sched.status().at("counters").at("timeouts").as_number(), 2.0);
}

TEST(Scheduler, DrainCancelsPromptlyAndKeepsStateQueryable) {
  std::atomic<int> started{0};
  auto slow = [&](const JobSpec&, const std::string&, std::size_t, int,
                  const CancellationToken& cancel) {
    ++started;
    for (int i = 0; i < 2000 && !cancel.stop_requested(); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (cancel.stop_requested()) return TaskOutcome::cancelled();
    return TaskOutcome::ok(json::Value::object());
  };
  JobScheduler sched(fast_limits(), slow, nullptr, nullptr);
  const SubmitOutcome out = sched.submit(selftest_spec(4));
  ASSERT_EQ(out.code, SubmitOutcome::Code::kAccepted);
  while (started.load() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  sched.drain();
  EXPECT_TRUE(sched.draining());
  // Cancelled-by-drain is not a failure: the job is still recoverable.
  const json::Value status = sched.job_status(out.job_id);
  EXPECT_EQ(status.at("state").as_string(), "queued") << status.dump();
  // Draining admits nothing new, with an explicit 503-style outcome.
  EXPECT_EQ(sched.submit(selftest_spec(1)).code,
            SubmitOutcome::Code::kDraining);
  // wait() unblocks instead of hanging on a job that cannot finish.
  EXPECT_EQ(sched.wait(out.job_id, 60000).at("state").as_string(),
            "queued");
}

// --- ledger -----------------------------------------------------------------

TEST(Ledger, PersistsAcrossReopenAndSeedsTheCache) {
  const std::string path = tmp_path("ledger_reopen.nsrl");
  std::remove(path.c_str());
  const JobSpec spec = selftest_spec(3);
  std::string result_dump;
  {
    Ledger ledger(path);
    EXPECT_TRUE(ledger.replayed().empty());
    CountingRunner counting;
    JobScheduler sched(fast_limits(), counting.fn(), nullptr, &ledger);
    const SubmitOutcome out = sched.submit(spec);
    ASSERT_EQ(out.code, SubmitOutcome::Code::kAccepted);
    const json::Value status = sched.wait(out.job_id, 0);
    ASSERT_EQ(status.at("state").as_string(), "done");
    result_dump = status.at("result").dump();
  }
  Ledger reopened(path);
  EXPECT_FALSE(reopened.truncated_on_open());
  // submit + 3 tasks + done
  ASSERT_EQ(reopened.replayed().size(), 5u);
  CountingRunner counting;
  JobScheduler sched(fast_limits(), counting.fn(), nullptr, &reopened);
  EXPECT_EQ(sched.recovered_jobs(), 0u);
  // The completed campaign replays from the cache: zero work re-done,
  // byte-identical result.
  const SubmitOutcome cached = sched.submit(spec);
  ASSERT_EQ(cached.code, SubmitOutcome::Code::kCached);
  EXPECT_EQ(cached.cached.dump(), result_dump);
  EXPECT_TRUE(counting.ran.empty());
}

TEST(Ledger, ReplayAfterCrashRunsOnlyMissingTasks) {
  const std::string path = tmp_path("ledger_crash.nsrl");
  std::remove(path.c_str());
  const JobSpec spec = selftest_spec(4);
  {
    // Simulated kill -9: submit + two task records are durable, then the
    // process vanished — no done record, no clean shutdown.
    Ledger ledger(path);
    json::Value submit = json::Value::object();
    submit.set("type", "submit");
    submit.set("job", "job-1");
    submit.set("spec", spec_to_json(spec));
    submit.set("fingerprint", fingerprint(spec));
    ASSERT_TRUE(ledger.append(submit));
    for (const int index : {0, 2}) {
      json::Value task = json::Value::object();
      task.set("type", "task");
      task.set("job", "job-1");
      task.set("task", index);
      json::Value result = json::Value::object();
      result.set("task", index);
      result.set("attempt", 1);
      task.set("result", std::move(result));
      ASSERT_TRUE(ledger.append(task));
    }
  }

  Ledger ledger(path);
  CountingRunner counting;
  JobScheduler sched(fast_limits(), counting.fn(), nullptr, &ledger);
  EXPECT_EQ(sched.recovered_jobs(), 1u);
  const json::Value status = sched.wait("job-1", 0);
  ASSERT_EQ(status.at("state").as_string(), "done") << status.dump();
  EXPECT_TRUE(status.at("recovered").as_bool());
  EXPECT_EQ(status.at("result").at("tasks").size(), 4u);
  // No lost tasks, no duplicated tasks: exactly the two missing ones ran.
  EXPECT_EQ(counting.sorted(), (std::vector<std::size_t>{1, 3}));
  // Job numbering continues after the recovered job instead of colliding.
  EXPECT_EQ(sched.submit(selftest_spec(1)).job_id, "job-2");
}

TEST(Ledger, RecoveryAggregatesWhenOnlyDoneRecordIsMissing) {
  const std::string path = tmp_path("ledger_nodone.nsrl");
  std::remove(path.c_str());
  const JobSpec spec = selftest_spec(2);
  {
    Ledger ledger(path);
    json::Value submit = json::Value::object();
    submit.set("type", "submit");
    submit.set("job", "job-1");
    submit.set("spec", spec_to_json(spec));
    submit.set("fingerprint", fingerprint(spec));
    ledger.append(submit);
    for (const int index : {0, 1}) {
      json::Value task = json::Value::object();
      task.set("type", "task");
      task.set("job", "job-1");
      task.set("task", index);
      task.set("result", json::Value::object());
      ledger.append(task);
    }
  }
  Ledger ledger(path);
  CountingRunner counting;
  JobScheduler sched(fast_limits(), counting.fn(), nullptr, &ledger);
  // Every task result was durable; recovery only owes the aggregation.
  const json::Value status = sched.wait("job-1", 0);
  EXPECT_EQ(status.at("state").as_string(), "done") << status.dump();
  EXPECT_TRUE(counting.ran.empty());
  EXPECT_EQ(sched.submit(spec).code, SubmitOutcome::Code::kCached);
}

TEST(Ledger, DamagedTailIsTruncatedAndPrefixReplayed) {
  const std::string path = tmp_path("ledger_damaged.nsrl");
  std::remove(path.c_str());
  {
    Ledger ledger(path);
    json::Value rec = json::Value::object();
    rec.set("type", "task");
    rec.set("job", "job-1");
    rec.set("task", 0);
    rec.set("result", json::Value::object());
    ASSERT_TRUE(ledger.append(rec));
  }
  {
    // A record half-written at kill -9 time: frame header present,
    // payload cut short.
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::uint32_t magic = snapshot::kRecordMagic;
    const std::uint64_t len = 1000;
    std::fwrite(&magic, sizeof magic, 1, f);
    std::fwrite(&len, sizeof len, 1, f);
    std::fwrite("partial", 1, 7, f);
    std::fclose(f);
  }
  Ledger reopened(path);
  EXPECT_TRUE(reopened.truncated_on_open());
  ASSERT_EQ(reopened.replayed().size(), 1u);
  EXPECT_EQ(reopened.replayed().front().at("type").as_string(), "task");
  // After truncation the file appends cleanly again.
  json::Value rec = json::Value::object();
  rec.set("type", "task");
  rec.set("job", "job-1");
  rec.set("task", 1);
  rec.set("result", json::Value::object());
  EXPECT_TRUE(reopened.append(rec));
  Ledger again(path);
  EXPECT_FALSE(again.truncated_on_open());
  EXPECT_EQ(again.replayed().size(), 2u);
}

TEST(Ledger, RejectsForeignFiles) {
  const std::string path = tmp_path("ledger_foreign.nsrl");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const std::string payload = "{\"type\":\"open\",\"magic\":\"other\"}";
    snapshot::append_record(
        f, reinterpret_cast<const std::uint8_t*>(payload.data()),
        payload.size());
    std::fclose(f);
  }
  EXPECT_THROW(Ledger ledger(path), std::runtime_error);
}

// --- server front end -------------------------------------------------------

ServerOptions test_server_options(const std::string& dir) {
  ServerOptions opts;
  opts.port = 0;  // ephemeral
  opts.dir = dir;
  opts.limits = fast_limits();
  return opts;
}

/// TempDir() persists across test runs; start every server test from an
/// empty ledger so replay counts are deterministic.
void wipe_state_dir(const std::string& dir) {
  std::remove((dir + "/ledger.nsrl").c_str());
}

TEST(Server, HandlesProtocolLinesEndToEnd) {
  const std::string dir = tmp_path("serve_e2e");
  wipe_state_dir(dir);
  Server server(test_server_options(dir));
  EXPECT_GT(server.port(), 0);

  EXPECT_TRUE(server.handle_line("{\"op\":\"ping\"}").at("pong").as_bool());
  EXPECT_EQ(server.handle_line("garbage").at("code").as_number(),
            kCodeBadRequest);
  EXPECT_EQ(server.handle_line("{\"op\":\"job\",\"job\":\"job-9\"}")
                .at("code")
                .as_number(),
            kCodeNotFound);

  const json::Value submitted = server.handle_line(
      "{\"op\":\"submit\",\"kind\":\"selftest\","
      "\"params\":{\"tasks\":2,\"sleep_ms\":1}}");
  ASSERT_TRUE(submitted.at("ok").as_bool()) << submitted.dump();
  const std::string job = submitted.at("job").as_string();

  const json::Value done = server.handle_line(
      "{\"op\":\"wait\",\"job\":\"" + job + "\",\"timeout_ms\":10000}");
  ASSERT_EQ(done.at("state").as_string(), "done") << done.dump();

  const json::Value status = server.handle_line("{\"op\":\"status\"}");
  EXPECT_EQ(status.at("jobs").at("done").as_number(), 1.0);
  EXPECT_EQ(status.at("server").at("port").as_number(),
            static_cast<double>(server.port()));

  const json::Value metrics = server.handle_line("{\"op\":\"metrics\"}");
  EXPECT_TRUE(metrics.at("ok").as_bool());
  EXPECT_NE(metrics.at("text").as_string().find("serve_jobs_done 1"),
            std::string::npos)
      << metrics.at("text").as_string();

  // Identical submission: served from the cache with the result inline.
  const json::Value cached = server.handle_line(
      "{\"op\":\"submit\",\"kind\":\"selftest\","
      "\"params\":{\"sleep_ms\":1,\"tasks\":2}}");
  ASSERT_TRUE(cached.at("ok").as_bool());
  EXPECT_TRUE(cached.at("cached").as_bool());
  EXPECT_EQ(cached.at("result").dump(), done.at("result").dump());
}

TEST(Server, InterruptedCampaignResumesAcrossRestart) {
  const std::string dir = tmp_path("serve_restart");
  wipe_state_dir(dir);
  std::string job;
  {
    Server server(test_server_options(dir));
    const json::Value submitted = server.handle_line(
        "{\"op\":\"submit\",\"kind\":\"selftest\","
        "\"params\":{\"tasks\":8,\"sleep_ms\":100}}");
    ASSERT_TRUE(submitted.at("ok").as_bool()) << submitted.dump();
    job = submitted.at("job").as_string();
    // Drain immediately: most of the 8 tasks are still pending, running
    // ones cancel at the next poll.  The dtor tears the daemon down.
    server.scheduler().drain();
    const json::Value status = server.handle_line(
        "{\"op\":\"job\",\"job\":\"" + job + "\"}");
    EXPECT_NE(status.at("state").as_string(), "done");
  }
  {
    Server server(test_server_options(dir));
    EXPECT_GE(server.scheduler().recovered_jobs(), 1u);
    const json::Value done = server.handle_line(
        "{\"op\":\"wait\",\"job\":\"" + job + "\",\"timeout_ms\":20000}");
    ASSERT_EQ(done.at("state").as_string(), "done") << done.dump();
    EXPECT_EQ(done.at("result").at("tasks").size(), 8u);
  }
}

}  // namespace
}  // namespace nocs::serve
