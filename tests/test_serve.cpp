// Serve-daemon robustness suite: protocol validation, crash-safe ledger
// replay, retry/timeout/quarantine supervision, admission control, the
// fingerprint result cache, and the socket-free server front end.  Every
// scheduler test uses synthetic runners so failure paths are exercised
// deterministically in milliseconds.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/shutdown.hpp"
#include "common/snapshot.hpp"
#include "serve/ledger.hpp"
#include "serve/protocol.hpp"
#include "serve/runner.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"

namespace nocs::serve {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Limits tuned so retries/timeouts resolve in milliseconds.
ServeLimits fast_limits() {
  ServeLimits l;
  l.workers = 2;
  l.max_attempts = 3;
  l.task_timeout_ms = 0;
  l.backoff_base_ms = 1;
  l.backoff_cap_ms = 4;
  l.supervise_every_ms = 2;
  l.wait_default_ms = 10000;
  return l;
}

JobSpec selftest_spec(int tasks, int sleep_ms = 1) {
  JobSpec spec;
  spec.kind = "selftest";
  spec.params.set("tasks", tasks);
  spec.params.set("sleep_ms", sleep_ms);
  return spec;
}

/// Runner that records which task indices it completed.
struct CountingRunner {
  std::mutex mu;
  std::vector<std::size_t> ran;

  TaskRunner fn() {
    return [this](const JobSpec&, const TaskContext& ctx) {
      {
        const std::lock_guard<std::mutex> lock(mu);
        ran.push_back(ctx.task_index);
      }
      json::Value v = json::Value::object();
      v.set("task", static_cast<double>(ctx.task_index));
      v.set("attempt", ctx.attempt);
      return TaskOutcome::ok(std::move(v));
    };
  }

  std::vector<std::size_t> sorted() {
    const std::lock_guard<std::mutex> lock(mu);
    std::vector<std::size_t> v = ran;
    std::sort(v.begin(), v.end());
    return v;
  }
};

// --- protocol ---------------------------------------------------------------

TEST(Protocol, ParsesEveryOp) {
  for (const char* op : {"status", "metrics", "drain", "ping"}) {
    const ParseResult r =
        parse_request(std::string("{\"op\":\"") + op + "\"}");
    ASSERT_TRUE(r.ok) << op << ": " << r.error;
    EXPECT_EQ(r.request.op, op);
  }
  const ParseResult submit = parse_request(
      "{\"op\":\"submit\",\"kind\":\"selftest\",\"params\":{\"tasks\":3},"
      "\"priority\":\"high\"}");
  ASSERT_TRUE(submit.ok) << submit.error;
  EXPECT_EQ(submit.request.spec.kind, "selftest");
  EXPECT_EQ(submit.request.spec.priority, TaskPriority::kHigh);
  EXPECT_EQ(task_count(submit.request.spec), 3u);

  // The client forwards params as strings; numeric strings must expand
  // exactly like numbers (they already fingerprint identically).
  const ParseResult str_tasks = parse_request(
      "{\"op\":\"submit\",\"kind\":\"selftest\",\"params\":{\"tasks\":\"3\"}}");
  ASSERT_TRUE(str_tasks.ok) << str_tasks.error;
  EXPECT_EQ(task_count(str_tasks.request.spec), 3u);

  const ParseResult wait = parse_request(
      "{\"op\":\"wait\",\"job\":\"job-1\",\"timeout_ms\":250}");
  ASSERT_TRUE(wait.ok) << wait.error;
  EXPECT_EQ(wait.request.job_id, "job-1");
  EXPECT_EQ(wait.request.timeout_ms, 250u);
  EXPECT_TRUE(wait.request.has_timeout);

  const ParseResult watch = parse_request(
      "{\"op\":\"watch\",\"job\":\"job-2\",\"every_ms\":50}");
  ASSERT_TRUE(watch.ok) << watch.error;
  EXPECT_EQ(watch.request.op, "watch");
  EXPECT_EQ(watch.request.job_id, "job-2");
  EXPECT_EQ(watch.request.every_ms, 50u);
}

TEST(Protocol, WaitTimeoutAbsentZeroAndNowaitAreDistinct) {
  // No timeout on the wire: the server default applies.
  const ParseResult plain =
      parse_request("{\"op\":\"wait\",\"job\":\"j\"}");
  ASSERT_TRUE(plain.ok) << plain.error;
  EXPECT_FALSE(plain.request.has_timeout);

  // An explicit 0 is a real value — a non-blocking poll, not "default".
  const ParseResult zero =
      parse_request("{\"op\":\"wait\",\"job\":\"j\",\"timeout_ms\":0}");
  ASSERT_TRUE(zero.ok) << zero.error;
  EXPECT_TRUE(zero.request.has_timeout);
  EXPECT_EQ(zero.request.timeout_ms, 0u);

  // nowait:true is sugar for timeout_ms:0.
  const ParseResult nowait =
      parse_request("{\"op\":\"wait\",\"job\":\"j\",\"nowait\":true}");
  ASSERT_TRUE(nowait.ok) << nowait.error;
  EXPECT_TRUE(nowait.request.has_timeout);
  EXPECT_EQ(nowait.request.timeout_ms, 0u);

  // nowait:false asserts nothing.
  const ParseResult off =
      parse_request("{\"op\":\"wait\",\"job\":\"j\",\"nowait\":false}");
  ASSERT_TRUE(off.ok) << off.error;
  EXPECT_FALSE(off.request.has_timeout);
}

TEST(Protocol, RejectsMalformedRequests) {
  const char* bad[] = {
      "",                                     // empty
      "not json",                             // parse error
      "[1,2,3]",                              // not an object
      "{\"op\":42}",                          // op wrong type
      "{\"op\":\"launch\"}",                  // unknown op
      "{\"op\":\"submit\"}",                  // missing kind
      "{\"op\":\"submit\",\"kind\":\"x\"}",   // unknown kind
      "{\"op\":\"submit\",\"kind\":\"sweep\",\"params\":17}",
      "{\"op\":\"submit\",\"kind\":\"sweep\",\"params\":{\"a\":[1]}}",
      "{\"op\":\"submit\",\"kind\":\"sweep\","
      "\"params\":{\"rates\":\"nope\"}}",
      "{\"op\":\"submit\",\"kind\":\"sweep\","
      "\"params\":{\"rates\":\"0.5:-0.1:0.1\"}}",
      "{\"op\":\"submit\",\"kind\":\"selftest\",\"params\":{\"tasks\":0}}",
      "{\"op\":\"submit\",\"kind\":\"selftest\","
      "\"params\":{\"tasks\":\"lots\"}}",
      "{\"op\":\"submit\",\"kind\":\"selftest\","
      "\"params\":{\"tasks\":\"-2\"}}",
      "{\"op\":\"submit\",\"kind\":\"selftest\","
      "\"params\":{\"tasks\":99999}}",
      "{\"op\":\"submit\",\"kind\":\"selftest\",\"priority\":\"urgent\"}",
      "{\"op\":\"wait\"}",                    // missing job
      "{\"op\":\"wait\",\"job\":\"\"}",       // empty job
      "{\"op\":\"wait\",\"job\":\"j\",\"timeout_ms\":-5}",
      "{\"op\":\"watch\"}",                   // missing job
      "{\"op\":\"watch\",\"job\":\"j\",\"every_ms\":-1}",
      "{\"op\":\"watch\",\"job\":\"j\",\"every_ms\":\"fast\"}",
      "{\"op\":\"wait\",\"job\":\"j\",\"nowait\":7}",
  };
  for (const char* line : bad) {
    const ParseResult r = parse_request(line);
    EXPECT_FALSE(r.ok) << "accepted: " << line;
    EXPECT_FALSE(r.error.empty());
  }
}

TEST(Protocol, FingerprintIsCanonical) {
  JobSpec a;
  a.kind = "sweep";
  a.params.set("level", 8);
  a.params.set("rates", "0.05:0.05:0.2");
  JobSpec b;
  b.kind = "sweep";
  b.params.set("rates", "0.05:0.05:0.2");  // different key order
  b.params.set("level", "8");              // string vs number
  b.priority = TaskPriority::kHigh;        // priority never changes results
  EXPECT_EQ(fingerprint(a), fingerprint(b));

  JobSpec c = a;
  c.params.set("seed", 2);
  EXPECT_NE(fingerprint(a), fingerprint(c));
  JobSpec d = a;
  d.kind = "simulate";
  EXPECT_NE(fingerprint(a), fingerprint(d));
}

TEST(Protocol, SpecJsonRoundTrips) {
  JobSpec spec;
  spec.kind = "sweep";
  spec.params.set("level", 8);
  spec.params.set("rates", "0.05:0.05:0.2");
  spec.priority = TaskPriority::kLow;
  const JobSpec back = spec_from_json(spec_to_json(spec));
  EXPECT_EQ(back.kind, spec.kind);
  EXPECT_EQ(back.priority, spec.priority);
  EXPECT_EQ(fingerprint(back), fingerprint(spec));
  EXPECT_THROW(spec_from_json(json::Value::parse("{\"kind\":\"x\"}")),
               std::invalid_argument);
  EXPECT_THROW(spec_from_json(json::Value::parse("[]")),
               std::invalid_argument);
}

TEST(Protocol, RatesGrammar) {
  const std::vector<double> r = parse_rates("0.1:0.1:0.3");
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r.front(), 0.1);
  EXPECT_THROW(parse_rates("0.1:0:0.3"), std::invalid_argument);
  EXPECT_THROW(parse_rates("0.3:0.1:0.1"), std::invalid_argument);
  EXPECT_THROW(parse_rates("xyz"), std::invalid_argument);

  JobSpec sweep;
  sweep.kind = "sweep";
  sweep.params.set("rates", "0.05:0.05:0.5");
  EXPECT_EQ(task_count(sweep), 10u);
  JobSpec sim;
  sim.kind = "simulate";
  EXPECT_EQ(task_count(sim), 1u);
}

// --- scheduler --------------------------------------------------------------

TEST(Scheduler, BackoffDelaySaturatesInsteadOfOverflowing) {
  // Normal capped-exponential progression.
  EXPECT_EQ(backoff_delay_ms(100, 5000, 1), 100u);
  EXPECT_EQ(backoff_delay_ms(100, 5000, 2), 200u);
  EXPECT_EQ(backoff_delay_ms(100, 5000, 3), 400u);
  EXPECT_EQ(backoff_delay_ms(100, 5000, 6), 3200u);
  EXPECT_EQ(backoff_delay_ms(100, 5000, 7), 5000u);

  // Regression: `base << (attempt - 1)` used to be computed before the
  // cap, so a large attempt count shifted past 64 bits and wrapped to a
  // tiny (or zero) delay.  The exponent must be clamped first.
  EXPECT_EQ(backoff_delay_ms(100, 5000, 64), 5000u);
  EXPECT_EQ(backoff_delay_ms(100, 5000, 65), 5000u);
  EXPECT_EQ(backoff_delay_ms(100, 5000, 100), 5000u);
  EXPECT_EQ(backoff_delay_ms(1, 5000, 1000000), 5000u);
  EXPECT_EQ(backoff_delay_ms(~0ull, 5000, 2), 5000u);

  // Degenerate corners.
  EXPECT_EQ(backoff_delay_ms(0, 5000, 50), 0u);    // backoff disabled
  EXPECT_EQ(backoff_delay_ms(9000, 5000, 1), 5000u);  // base above cap
  EXPECT_EQ(backoff_delay_ms(100, 5000, 0), 100u);    // clamped exponent
}

TEST(Scheduler, RunsJobAndServesCachedResubmission) {
  CountingRunner counting;
  JobScheduler sched(fast_limits(), counting.fn(), nullptr, nullptr);
  const JobSpec spec = selftest_spec(4);

  const SubmitOutcome first = sched.submit(spec);
  ASSERT_EQ(first.code, SubmitOutcome::Code::kAccepted);
  EXPECT_EQ(first.job_id, "job-1");
  const json::Value status = sched.wait(first.job_id);
  ASSERT_EQ(status.at("state").as_string(), "done")
      << status.dump();
  EXPECT_EQ(status.at("result").at("tasks").size(), 4u);
  EXPECT_EQ(counting.sorted(), (std::vector<std::size_t>{0, 1, 2, 3}));

  // Identical spec (even with another priority): replayed from the cache
  // bit-identically, without touching the runner again.
  JobSpec again = spec;
  again.priority = TaskPriority::kHigh;
  const SubmitOutcome second = sched.submit(again);
  ASSERT_EQ(second.code, SubmitOutcome::Code::kCached);
  EXPECT_EQ(second.job_id, first.job_id);
  EXPECT_EQ(second.cached.dump(), status.at("result").dump());
  EXPECT_EQ(counting.ran.size(), 4u);

  const json::Value s = sched.status();
  EXPECT_EQ(s.at("counters").at("cache_hits").as_number(), 1.0);
}

TEST(Scheduler, UnknownJobIs404) {
  CountingRunner counting;
  JobScheduler sched(fast_limits(), counting.fn(), nullptr, nullptr);
  const json::Value v = sched.job_status("job-99");
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("code").as_number(), kCodeNotFound);
}

TEST(Scheduler, AdmissionControlRejectsExplicitly) {
  std::atomic<bool> release{false};
  auto gate = [&](const JobSpec&, const TaskContext& ctx) {
    while (!release.load() && !ctx.cancel.stop_requested())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return TaskOutcome::ok(json::Value::object());
  };
  ServeLimits limits = fast_limits();
  limits.max_jobs = 1;
  limits.max_pending_tasks = 4;
  JobScheduler sched(limits, gate, nullptr, nullptr);

  ASSERT_EQ(sched.submit(selftest_spec(1)).code,
            SubmitOutcome::Code::kAccepted);
  // Job queue full: a *different* spec bounces with a 429-style reject.
  const SubmitOutcome full = sched.submit(selftest_spec(2));
  EXPECT_EQ(full.code, SubmitOutcome::Code::kRejected);
  EXPECT_FALSE(full.error.empty());
  EXPECT_EQ(sched.status().at("counters").at("rejected").as_number(), 1.0);
  release.store(true);

  // Task bound: one job whose expansion exceeds the pending budget.
  ServeLimits tiny = fast_limits();
  tiny.max_pending_tasks = 2;
  CountingRunner counting;
  JobScheduler small(tiny, counting.fn(), nullptr, nullptr);
  EXPECT_EQ(small.submit(selftest_spec(3)).code,
            SubmitOutcome::Code::kRejected);
}

TEST(Scheduler, RetriesWithBackoffThenSucceeds) {
  std::atomic<int> calls{0};
  auto flaky = [&](const JobSpec&, const TaskContext& ctx) {
    ++calls;
    if (ctx.attempt < 3) return TaskOutcome::failed("induced");
    json::Value v = json::Value::object();
    v.set("attempt", ctx.attempt);
    return TaskOutcome::ok(std::move(v));
  };
  JobScheduler sched(fast_limits(), flaky, nullptr, nullptr);
  const SubmitOutcome out = sched.submit(selftest_spec(1));
  ASSERT_EQ(out.code, SubmitOutcome::Code::kAccepted);
  const json::Value status = sched.wait(out.job_id);
  ASSERT_EQ(status.at("state").as_string(), "done") << status.dump();
  EXPECT_EQ(status.at("result").at("tasks").at(0).at("attempt").as_number(),
            3.0);
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(sched.status().at("counters").at("retries").as_number(), 2.0);
}

TEST(Scheduler, QuarantinesAfterMaxAttempts) {
  std::atomic<int> calls{0};
  auto broken = [&](const JobSpec&, const TaskContext&) {
    ++calls;
    return TaskOutcome::failed("always broken");
  };
  ServeLimits limits = fast_limits();
  limits.max_attempts = 2;
  JobScheduler sched(limits, broken, nullptr, nullptr);
  const SubmitOutcome out = sched.submit(selftest_spec(1));
  const json::Value status = sched.wait(out.job_id);
  ASSERT_EQ(status.at("state").as_string(), "quarantined") << status.dump();
  EXPECT_NE(status.at("error").as_string().find("always broken"),
            std::string::npos);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(sched.status().at("jobs").at("quarantined").as_number(), 1.0);
  // A quarantined job never seeds the cache: resubmitting retries fresh.
  EXPECT_EQ(sched.submit(selftest_spec(1)).code,
            SubmitOutcome::Code::kAccepted);
}

TEST(Scheduler, WatchdogTimesOutHungTasksThenQuarantines) {
  auto hung = [](const JobSpec&, const TaskContext& ctx) {
    while (!ctx.cancel.stop_requested())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return TaskOutcome::cancelled();
  };
  ServeLimits limits = fast_limits();
  limits.max_attempts = 2;
  limits.task_timeout_ms = 25;
  JobScheduler sched(limits, hung, nullptr, nullptr);
  const SubmitOutcome out = sched.submit(selftest_spec(1));
  const json::Value status = sched.wait(out.job_id);
  ASSERT_EQ(status.at("state").as_string(), "quarantined") << status.dump();
  EXPECT_NE(status.at("error").as_string().find("timed out"),
            std::string::npos);
  EXPECT_EQ(sched.status().at("counters").at("timeouts").as_number(), 2.0);
}

TEST(Scheduler, DrainCancelsPromptlyAndKeepsStateQueryable) {
  std::atomic<int> started{0};
  auto slow = [&](const JobSpec&, const TaskContext& ctx) {
    ++started;
    for (int i = 0; i < 2000 && !ctx.cancel.stop_requested(); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (ctx.cancel.stop_requested()) return TaskOutcome::cancelled();
    return TaskOutcome::ok(json::Value::object());
  };
  JobScheduler sched(fast_limits(), slow, nullptr, nullptr);
  const SubmitOutcome out = sched.submit(selftest_spec(4));
  ASSERT_EQ(out.code, SubmitOutcome::Code::kAccepted);
  while (started.load() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  sched.drain();
  EXPECT_TRUE(sched.draining());
  // Cancelled-by-drain is not a failure: the job is still recoverable.
  const json::Value status = sched.job_status(out.job_id);
  EXPECT_EQ(status.at("state").as_string(), "queued") << status.dump();
  // Draining admits nothing new, with an explicit 503-style outcome.
  EXPECT_EQ(sched.submit(selftest_spec(1)).code,
            SubmitOutcome::Code::kDraining);
  // wait() unblocks instead of hanging on a job that cannot finish.
  EXPECT_EQ(sched.wait(out.job_id, 60000).at("state").as_string(),
            "queued");
}

TEST(Scheduler, WaitZeroTimeoutIsImmediatePoll) {
  std::atomic<bool> release{false};
  auto gate = [&](const JobSpec&, const TaskContext& ctx) {
    while (!release.load() && !ctx.cancel.stop_requested())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return TaskOutcome::ok(json::Value::object());
  };
  JobScheduler sched(fast_limits(), gate, nullptr, nullptr);
  const SubmitOutcome out = sched.submit(selftest_spec(1));
  ASSERT_EQ(out.code, SubmitOutcome::Code::kAccepted);

  // Regression: timeout 0 used to mean "server default" (10 s here), so
  // polling a running job blocked.  It must return the current state
  // immediately.
  const auto t0 = std::chrono::steady_clock::now();
  const json::Value polled = sched.wait(out.job_id, 0);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 5000);
  EXPECT_NE(polled.at("state").as_string(), "done") << polled.dump();

  release.store(true);
  EXPECT_EQ(sched.wait(out.job_id).at("state").as_string(), "done");
}

// --- preemption -------------------------------------------------------------

TEST(Scheduler, HighPrioritySubmissionPreemptsLowerPriorityTask) {
  std::atomic<bool> low_started{false};
  std::atomic<int> low_runs{0};
  std::mutex order_mu;
  std::vector<std::string> finish_order;
  auto runner = [&](const JobSpec& spec, const TaskContext& ctx) {
    if (spec.priority == TaskPriority::kLow) {
      if (++low_runs == 1) {
        // First execution: occupy the only worker until preempted.
        low_started.store(true);
        while (!ctx.cancel.stop_requested())
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return TaskOutcome::cancelled();
      }
      const std::lock_guard<std::mutex> lock(order_mu);
      finish_order.push_back("low");
    } else {
      const std::lock_guard<std::mutex> lock(order_mu);
      finish_order.push_back("high");
    }
    json::Value v = json::Value::object();
    v.set("attempt", ctx.attempt);
    return TaskOutcome::ok(std::move(v));
  };
  ServeLimits limits = fast_limits();
  limits.workers = 1;
  JobScheduler sched(limits, runner, nullptr, nullptr);

  JobSpec low = selftest_spec(1);
  low.priority = TaskPriority::kLow;
  const SubmitOutcome low_out = sched.submit(low);
  ASSERT_EQ(low_out.code, SubmitOutcome::Code::kAccepted);
  while (!low_started.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  JobSpec high = selftest_spec(2);  // distinct spec: no fingerprint clash
  high.priority = TaskPriority::kHigh;
  const SubmitOutcome high_out = sched.submit(high);
  ASSERT_EQ(high_out.code, SubmitOutcome::Code::kAccepted);

  const json::Value high_done = sched.wait(high_out.job_id);
  ASSERT_EQ(high_done.at("state").as_string(), "done") << high_done.dump();
  const json::Value low_done = sched.wait(low_out.job_id);
  ASSERT_EQ(low_done.at("state").as_string(), "done") << low_done.dump();

  // The high job ran first even though the low job held the only worker.
  {
    const std::lock_guard<std::mutex> lock(order_mu);
    ASSERT_EQ(finish_order.size(), 3u);
    EXPECT_EQ(finish_order.front(), "high");
  }
  // Preemption is not a failure: the victim's attempt was not consumed.
  EXPECT_EQ(
      low_done.at("result").at("tasks").at(0).at("attempt").as_number(),
      1.0);
  const json::Value s = sched.status();
  EXPECT_EQ(s.at("counters").at("preemptions").as_number(), 1.0);
  EXPECT_EQ(s.at("counters").at("retries").as_number(), 0.0);
}

/// The real thing end to end: a cycle-accurate simulation (sharded across
/// sim_threads=2) is preempted mid-run by a high-priority job, checkpoints,
/// resumes, and its final report is byte-identical to an uninterrupted run.
TEST(Scheduler, PreemptedSimulationResumesBitIdentically) {
  JobSpec sim;
  sim.kind = "simulate";
  sim.params.set("level", 4);
  sim.params.set("warmup", 500);
  sim.params.set("measure", 20000);
  sim.params.set("injection", 0.05);
  sim.params.set("sim_threads", 2);
  sim.params.set("seed", 7);

  ServeLimits limits = fast_limits();
  limits.workers = 1;
  limits.wait_default_ms = 300000;

  std::string preempted_dump;
  {
    const std::string dir = tmp_path("serve_preempt_state");
    ::mkdir(dir.c_str(), 0755);
    std::remove((dir + "/job-1.task0.nocsnap").c_str());
    JobScheduler sched(limits, make_sim_runner(dir), make_sim_aggregator(),
                       nullptr);
    JobSpec low = sim;
    low.priority = TaskPriority::kLow;
    const SubmitOutcome out = sched.submit(low);
    ASSERT_EQ(out.code, SubmitOutcome::Code::kAccepted);

    // Let the simulation make real progress (the runner reports cycles
    // through the progress hook) before preempting it.
    bool progressed = false;
    for (int i = 0; i < 60000 && !progressed; ++i) {
      const json::Value st = sched.job_status(out.job_id);
      const json::Value* cycles = st.find("cycles");
      if (cycles != nullptr && cycles->as_number() > 0) progressed = true;
      else std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(progressed) << sched.job_status(out.job_id).dump();

    JobSpec high = selftest_spec(1, 1);
    high.priority = TaskPriority::kHigh;
    ASSERT_EQ(sched.submit(high).code, SubmitOutcome::Code::kAccepted);

    const json::Value done = sched.wait(out.job_id);
    ASSERT_EQ(done.at("state").as_string(), "done") << done.dump();
    preempted_dump = done.at("result").dump();
    EXPECT_GE(
        sched.status().at("counters").at("preemptions").as_number(), 1.0);
  }

  // Clean control run of the identical spec, never preempted.
  {
    const std::string dir = tmp_path("serve_preempt_clean");
    ::mkdir(dir.c_str(), 0755);
    std::remove((dir + "/job-1.task0.nocsnap").c_str());
    JobScheduler sched(limits, make_sim_runner(dir), make_sim_aggregator(),
                       nullptr);
    const SubmitOutcome out = sched.submit(sim);
    ASSERT_EQ(out.code, SubmitOutcome::Code::kAccepted);
    const json::Value done = sched.wait(out.job_id);
    ASSERT_EQ(done.at("state").as_string(), "done") << done.dump();
    EXPECT_EQ(done.at("result").dump(), preempted_dump);
  }
}

// --- streaming progress -----------------------------------------------------

TEST(Scheduler, WatchStreamsProgressFramesThenFinalStatus) {
  auto ticking = [](const JobSpec&, const TaskContext& ctx) {
    for (int i = 0; i < 40; ++i) {
      if (ctx.cancel.stop_requested()) return TaskOutcome::cancelled();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (ctx.report_progress)
        ctx.report_progress(static_cast<std::uint64_t>(i + 1));
    }
    return TaskOutcome::ok(json::Value::object());
  };
  ServeLimits limits = fast_limits();
  limits.progress_every_ms = 1;
  JobScheduler sched(limits, ticking, nullptr, nullptr);
  const SubmitOutcome out = sched.submit(selftest_spec(1));
  ASSERT_EQ(out.code, SubmitOutcome::Code::kAccepted);

  std::vector<json::Value> frames;
  const json::Value final_status =
      sched.watch(out.job_id, 1, [&](const json::Value& frame) {
        frames.push_back(frame);
        return true;
      });

  // The stream ends in the job's terminal status — not an event frame.
  ASSERT_EQ(final_status.at("state").as_string(), "done")
      << final_status.dump();
  EXPECT_EQ(final_status.find("event"), nullptr);

  // At least one progress frame arrived, cycles never went backwards.
  ASSERT_FALSE(frames.empty());
  double last_cycles = 0;
  for (const json::Value& f : frames) {
    ASSERT_TRUE(f.at("ok").as_bool()) << f.dump();
    EXPECT_EQ(f.at("event").as_string(), "progress");
    EXPECT_EQ(f.at("job").as_string(), out.job_id);
    const double cycles = f.at("cycles").as_number();
    EXPECT_GE(cycles, last_cycles) << f.dump();
    last_cycles = cycles;
    EXPECT_GE(f.at("queue_position").as_number(), 0.0);
  }
  EXPECT_GT(last_cycles, 0.0);
}

TEST(Scheduler, WatchUnknownJobIs404AndHangupStopsTheStream) {
  CountingRunner counting;
  JobScheduler sched(fast_limits(), counting.fn(), nullptr, nullptr);
  const json::Value missing =
      sched.watch("job-42", 0, [](const json::Value&) { return true; });
  EXPECT_FALSE(missing.at("ok").as_bool());
  EXPECT_EQ(missing.at("code").as_number(), kCodeNotFound);

  // A client that hangs up (emit returns false) ends the stream with the
  // job's current status instead of blocking until completion.
  std::atomic<bool> release{false};
  auto gate = [&](const JobSpec&, const TaskContext& ctx) {
    while (!release.load() && !ctx.cancel.stop_requested()) {
      if (ctx.report_progress) ctx.report_progress(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return TaskOutcome::ok(json::Value::object());
  };
  ServeLimits limits = fast_limits();
  limits.progress_every_ms = 1;
  JobScheduler gated(limits, gate, nullptr, nullptr);
  const SubmitOutcome out = gated.submit(selftest_spec(1));
  const json::Value last =
      gated.watch(out.job_id, 1, [](const json::Value&) { return false; });
  EXPECT_NE(last.at("state").as_string(), "done");
  release.store(true);
  EXPECT_EQ(gated.wait(out.job_id).at("state").as_string(), "done");
}

// --- ledger -----------------------------------------------------------------

TEST(Ledger, PersistsAcrossReopenAndSeedsTheCache) {
  const std::string path = tmp_path("ledger_reopen.nsrl");
  std::remove(path.c_str());
  const JobSpec spec = selftest_spec(3);
  std::string result_dump;
  {
    Ledger ledger(path);
    EXPECT_TRUE(ledger.replayed().empty());
    CountingRunner counting;
    JobScheduler sched(fast_limits(), counting.fn(), nullptr, &ledger);
    const SubmitOutcome out = sched.submit(spec);
    ASSERT_EQ(out.code, SubmitOutcome::Code::kAccepted);
    const json::Value status = sched.wait(out.job_id);
    ASSERT_EQ(status.at("state").as_string(), "done");
    result_dump = status.at("result").dump();
  }
  Ledger reopened(path);
  EXPECT_FALSE(reopened.truncated_on_open());
  // submit + 3 tasks + done
  ASSERT_EQ(reopened.replayed().size(), 5u);
  CountingRunner counting;
  JobScheduler sched(fast_limits(), counting.fn(), nullptr, &reopened);
  EXPECT_EQ(sched.recovered_jobs(), 0u);
  // The completed campaign replays from the cache: zero work re-done,
  // byte-identical result.
  const SubmitOutcome cached = sched.submit(spec);
  ASSERT_EQ(cached.code, SubmitOutcome::Code::kCached);
  EXPECT_EQ(cached.cached.dump(), result_dump);
  EXPECT_TRUE(counting.ran.empty());
}

TEST(Ledger, ReplayAfterCrashRunsOnlyMissingTasks) {
  const std::string path = tmp_path("ledger_crash.nsrl");
  std::remove(path.c_str());
  const JobSpec spec = selftest_spec(4);
  {
    // Simulated kill -9: submit + two task records are durable, then the
    // process vanished — no done record, no clean shutdown.
    Ledger ledger(path);
    json::Value submit = json::Value::object();
    submit.set("type", "submit");
    submit.set("job", "job-1");
    submit.set("spec", spec_to_json(spec));
    submit.set("fingerprint", fingerprint(spec));
    ASSERT_TRUE(ledger.append(submit));
    for (const int index : {0, 2}) {
      json::Value task = json::Value::object();
      task.set("type", "task");
      task.set("job", "job-1");
      task.set("task", index);
      json::Value result = json::Value::object();
      result.set("task", index);
      result.set("attempt", 1);
      task.set("result", std::move(result));
      ASSERT_TRUE(ledger.append(task));
    }
  }

  Ledger ledger(path);
  CountingRunner counting;
  JobScheduler sched(fast_limits(), counting.fn(), nullptr, &ledger);
  EXPECT_EQ(sched.recovered_jobs(), 1u);
  const json::Value status = sched.wait("job-1");
  ASSERT_EQ(status.at("state").as_string(), "done") << status.dump();
  EXPECT_TRUE(status.at("recovered").as_bool());
  EXPECT_EQ(status.at("result").at("tasks").size(), 4u);
  // No lost tasks, no duplicated tasks: exactly the two missing ones ran.
  EXPECT_EQ(counting.sorted(), (std::vector<std::size_t>{1, 3}));
  // Job numbering continues after the recovered job instead of colliding.
  EXPECT_EQ(sched.submit(selftest_spec(1)).job_id, "job-2");
}

TEST(Ledger, RecoveryAggregatesWhenOnlyDoneRecordIsMissing) {
  const std::string path = tmp_path("ledger_nodone.nsrl");
  std::remove(path.c_str());
  const JobSpec spec = selftest_spec(2);
  {
    Ledger ledger(path);
    json::Value submit = json::Value::object();
    submit.set("type", "submit");
    submit.set("job", "job-1");
    submit.set("spec", spec_to_json(spec));
    submit.set("fingerprint", fingerprint(spec));
    ledger.append(submit);
    for (const int index : {0, 1}) {
      json::Value task = json::Value::object();
      task.set("type", "task");
      task.set("job", "job-1");
      task.set("task", index);
      task.set("result", json::Value::object());
      ledger.append(task);
    }
  }
  Ledger ledger(path);
  CountingRunner counting;
  JobScheduler sched(fast_limits(), counting.fn(), nullptr, &ledger);
  // Every task result was durable; recovery only owes the aggregation.
  const json::Value status = sched.wait("job-1");
  EXPECT_EQ(status.at("state").as_string(), "done") << status.dump();
  EXPECT_TRUE(counting.ran.empty());
  EXPECT_EQ(sched.submit(spec).code, SubmitOutcome::Code::kCached);
}

TEST(Ledger, DamagedTailIsTruncatedAndPrefixReplayed) {
  const std::string path = tmp_path("ledger_damaged.nsrl");
  std::remove(path.c_str());
  {
    Ledger ledger(path);
    json::Value rec = json::Value::object();
    rec.set("type", "task");
    rec.set("job", "job-1");
    rec.set("task", 0);
    rec.set("result", json::Value::object());
    ASSERT_TRUE(ledger.append(rec));
  }
  {
    // A record half-written at kill -9 time: frame header present,
    // payload cut short.
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::uint32_t magic = snapshot::kRecordMagic;
    const std::uint64_t len = 1000;
    std::fwrite(&magic, sizeof magic, 1, f);
    std::fwrite(&len, sizeof len, 1, f);
    std::fwrite("partial", 1, 7, f);
    std::fclose(f);
  }
  Ledger reopened(path);
  EXPECT_TRUE(reopened.truncated_on_open());
  ASSERT_EQ(reopened.replayed().size(), 1u);
  EXPECT_EQ(reopened.replayed().front().at("type").as_string(), "task");
  // After truncation the file appends cleanly again.
  json::Value rec = json::Value::object();
  rec.set("type", "task");
  rec.set("job", "job-1");
  rec.set("task", 1);
  rec.set("result", json::Value::object());
  EXPECT_TRUE(reopened.append(rec));
  Ledger again(path);
  EXPECT_FALSE(again.truncated_on_open());
  EXPECT_EQ(again.replayed().size(), 2u);
}

TEST(Ledger, RejectsForeignFiles) {
  const std::string path = tmp_path("ledger_foreign.nsrl");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const std::string payload = "{\"type\":\"open\",\"magic\":\"other\"}";
    snapshot::append_record(
        f, reinterpret_cast<const std::uint8_t*>(payload.data()),
        payload.size());
    std::fclose(f);
  }
  EXPECT_THROW(Ledger ledger(path), std::runtime_error);
}

// --- ledger compaction ------------------------------------------------------

/// Appends a synthetic interrupted job (submit + one of two task results)
/// through the public API, as a crash would leave it.
void append_interrupted_job(Ledger& ledger, const std::string& job_id,
                            const JobSpec& spec) {
  json::Value submit = json::Value::object();
  submit.set("type", "submit");
  submit.set("job", job_id);
  submit.set("spec", spec_to_json(spec));
  submit.set("fingerprint", fingerprint(spec));
  ASSERT_TRUE(ledger.append(submit));
  json::Value task = json::Value::object();
  task.set("type", "task");
  task.set("job", job_id);
  task.set("task", 0);
  json::Value result = json::Value::object();
  result.set("task", 0);
  result.set("attempt", 1);
  task.set("result", std::move(result));
  ASSERT_TRUE(ledger.append(task));
}

TEST(Ledger, CompactionKeepsTerminalResultsAndLiveTasks) {
  const std::string path = tmp_path("ledger_compact.nsrl");
  std::remove(path.c_str());
  const JobSpec finished = selftest_spec(4);
  const JobSpec interrupted = selftest_spec(2, 3);

  std::string result_dump;
  {
    // One campaign runs to completion: submit + 4 tasks + done on disk.
    Ledger ledger(path);
    CountingRunner counting;
    JobScheduler sched(fast_limits(), counting.fn(), nullptr, &ledger);
    const SubmitOutcome out = sched.submit(finished);
    ASSERT_EQ(out.code, SubmitOutcome::Code::kAccepted);
    const json::Value status = sched.wait(out.job_id);
    ASSERT_EQ(status.at("state").as_string(), "done");
    result_dump = status.at("result").dump();

    // The scheduler surfaces ledger health in its status document.
    const json::Value s = sched.status();
    EXPECT_TRUE(s.at("ledger").at("healthy").as_bool());
    EXPECT_GT(s.at("ledger").at("bytes").as_number(), 0.0);
  }
  {
    // A second campaign dies mid-flight, then the log is compacted: the
    // finished job collapses to submit + done (its per-task records are
    // dead weight), the live job keeps its partial task records.
    Ledger ledger(path);
    append_interrupted_job(ledger, "job-2", interrupted);
    const std::uint64_t before = ledger.size_bytes();
    ASSERT_TRUE(ledger.compact());
    EXPECT_LT(ledger.size_bytes(), before);
    EXPECT_EQ(ledger.compactions(), 1u);
    EXPECT_TRUE(ledger.healthy());
  }

  // Replay after compaction: the cached result is byte-identical and the
  // interrupted job still owes exactly its missing task.
  Ledger ledger(path);
  EXPECT_FALSE(ledger.truncated_on_open());
  CountingRunner counting;
  JobScheduler sched(fast_limits(), counting.fn(), nullptr, &ledger);
  EXPECT_EQ(sched.recovered_jobs(), 1u);
  const json::Value done = sched.wait("job-2");
  ASSERT_EQ(done.at("state").as_string(), "done") << done.dump();
  EXPECT_EQ(counting.sorted(), (std::vector<std::size_t>{1}));
  const SubmitOutcome cached = sched.submit(finished);
  ASSERT_EQ(cached.code, SubmitOutcome::Code::kCached);
  EXPECT_EQ(cached.cached.dump(), result_dump);
}

TEST(Ledger, AutoCompactionTriggersPastThreshold) {
  const std::string path = tmp_path("ledger_autocompact.nsrl");
  std::remove(path.c_str());
  std::vector<JobSpec> specs;
  std::string first_dump;
  {
    Ledger ledger(path, 2048);
    CountingRunner counting;
    JobScheduler sched(fast_limits(), counting.fn(), nullptr, &ledger);
    for (int i = 0; i < 12; ++i) {
      JobSpec spec = selftest_spec(4, i + 1);  // distinct fingerprints
      specs.push_back(spec);
      const SubmitOutcome out = sched.submit(spec);
      ASSERT_EQ(out.code, SubmitOutcome::Code::kAccepted);
      const json::Value status = sched.wait(out.job_id);
      ASSERT_EQ(status.at("state").as_string(), "done") << status.dump();
      if (i == 0) first_dump = status.at("result").dump();
    }
    // Crossing the threshold (with the regrowth guard) compacted at
    // least once, and the snapshot stays well under the raw append size.
    EXPECT_GE(ledger.compactions(), 1u);
  }
  Ledger reopened(path, 2048);
  EXPECT_FALSE(reopened.truncated_on_open());
  CountingRunner counting;
  JobScheduler sched(fast_limits(), counting.fn(), nullptr, &reopened);
  EXPECT_EQ(sched.recovered_jobs(), 0u);
  // Every finished campaign survived every compaction, byte-identically.
  for (const JobSpec& spec : specs) {
    const SubmitOutcome cached = sched.submit(spec);
    ASSERT_EQ(cached.code, SubmitOutcome::Code::kCached);
  }
  EXPECT_EQ(sched.submit(specs.front()).cached.dump(), first_dump);
}

TEST(Ledger, KillDuringCompactionRecoversFromEveryState) {
  const std::string path = tmp_path("ledger_killcompact.nsrl");
  const std::string tmp = path + ".compact.tmp";
  std::remove(path.c_str());
  const JobSpec spec = selftest_spec(3);
  std::string result_dump;
  {
    Ledger ledger(path);
    CountingRunner counting;
    JobScheduler sched(fast_limits(), counting.fn(), nullptr, &ledger);
    const SubmitOutcome out = sched.submit(spec);
    result_dump = sched.wait(out.job_id).at("result").dump();
  }

  // State 1 — killed before the rename, garbage already in the temp
  // file: the old log is intact and wins; the temp file is swept away.
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("garbage mid-compaction", 1, 22, f);
    std::fclose(f);
    Ledger ledger(path);
    EXPECT_FALSE(ledger.truncated_on_open());
    EXPECT_EQ(ledger.replayed().size(), 5u);  // submit + 3 tasks + done
    struct stat st{};
    EXPECT_NE(::stat(tmp.c_str(), &st), 0) << "stale temp file not removed";
  }

  // State 2 — killed mid-write with a *valid-looking* prefix in the temp
  // file (half the real log): still ignored, the old log still wins.
  {
    std::FILE* in = std::fopen(path.c_str(), "rb");
    ASSERT_NE(in, nullptr);
    std::fseek(in, 0, SEEK_END);
    const long size = std::ftell(in);
    std::fseek(in, 0, SEEK_SET);
    std::vector<char> half(static_cast<std::size_t>(size) / 2);
    ASSERT_EQ(std::fread(half.data(), 1, half.size(), in), half.size());
    std::fclose(in);
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(half.data(), 1, half.size(), f);
    std::fclose(f);

    Ledger ledger(path);
    EXPECT_FALSE(ledger.truncated_on_open());
    EXPECT_EQ(ledger.replayed().size(), 5u);
  }

  // State 3 — killed right after the rename: the compacted file *is* the
  // log now, and it replays to the same job state (cache included).
  {
    Ledger ledger(path);
    ASSERT_TRUE(ledger.compact());
  }
  Ledger ledger(path);
  EXPECT_FALSE(ledger.truncated_on_open());
  CountingRunner counting;
  JobScheduler sched(fast_limits(), counting.fn(), nullptr, &ledger);
  const SubmitOutcome cached = sched.submit(spec);
  ASSERT_EQ(cached.code, SubmitOutcome::Code::kCached);
  EXPECT_EQ(cached.cached.dump(), result_dump);
}

TEST(Ledger, FailsClosedWhenDamagedTailCannotBeRepaired) {
  if (::geteuid() == 0)
    GTEST_SKIP() << "root bypasses file permission checks, so a read-only "
                    "file cannot force truncate() to fail";
  const std::string path = tmp_path("ledger_failclosed.nsrl");
  std::remove(path.c_str());
  {
    Ledger ledger(path);
    json::Value rec = json::Value::object();
    rec.set("type", "task");
    rec.set("job", "job-1");
    rec.set("task", 0);
    rec.set("result", json::Value::object());
    ASSERT_TRUE(ledger.append(rec));
  }
  {
    // Torn frame at the tail, then the file becomes read-only: the
    // repair truncate() must fail.
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::uint32_t magic = snapshot::kRecordMagic;
    const std::uint64_t len = 1000;
    std::fwrite(&magic, sizeof magic, 1, f);
    std::fwrite(&len, sizeof len, 1, f);
    std::fwrite("partial", 1, 7, f);
    std::fclose(f);
  }
  ASSERT_EQ(::chmod(path.c_str(), 0444), 0);

  Ledger ledger(path);
  // The valid prefix still replays — recovery is not lost — but the
  // ledger refuses to bury new records after corrupt bytes.
  EXPECT_FALSE(ledger.healthy());
  EXPECT_EQ(ledger.replayed().size(), 1u);
  json::Value rec = json::Value::object();
  rec.set("type", "task");
  rec.set("job", "job-1");
  rec.set("task", 1);
  rec.set("result", json::Value::object());
  EXPECT_FALSE(ledger.append(rec));

  // The daemon surfaces the failure as a 503 on submit instead of
  // acknowledging work it cannot make durable.
  CountingRunner counting;
  JobScheduler sched(fast_limits(), counting.fn(), nullptr, &ledger);
  const SubmitOutcome out = sched.submit(selftest_spec(1));
  EXPECT_EQ(out.code, SubmitOutcome::Code::kDraining);
  EXPECT_FALSE(out.error.empty());
  EXPECT_FALSE(sched.status().at("ledger").at("healthy").as_bool());

  ::chmod(path.c_str(), 0644);  // let TempDir cleanup reclaim it
}

// --- server front end -------------------------------------------------------

ServerOptions test_server_options(const std::string& dir) {
  ServerOptions opts;
  opts.port = 0;  // ephemeral
  opts.dir = dir;
  opts.limits = fast_limits();
  return opts;
}

/// TempDir() persists across test runs; start every server test from an
/// empty ledger so replay counts are deterministic.
void wipe_state_dir(const std::string& dir) {
  std::remove((dir + "/ledger.nsrl").c_str());
}

TEST(Server, HandlesProtocolLinesEndToEnd) {
  const std::string dir = tmp_path("serve_e2e");
  wipe_state_dir(dir);
  Server server(test_server_options(dir));
  EXPECT_GT(server.port(), 0);

  EXPECT_TRUE(server.handle_line("{\"op\":\"ping\"}").at("pong").as_bool());
  EXPECT_EQ(server.handle_line("garbage").at("code").as_number(),
            kCodeBadRequest);
  EXPECT_EQ(server.handle_line("{\"op\":\"job\",\"job\":\"job-9\"}")
                .at("code")
                .as_number(),
            kCodeNotFound);

  const json::Value submitted = server.handle_line(
      "{\"op\":\"submit\",\"kind\":\"selftest\","
      "\"params\":{\"tasks\":2,\"sleep_ms\":1}}");
  ASSERT_TRUE(submitted.at("ok").as_bool()) << submitted.dump();
  const std::string job = submitted.at("job").as_string();

  // A non-blocking poll replies instantly with whatever state the job is
  // in; it never inherits the server's default wait timeout.
  const json::Value polled = server.handle_line(
      "{\"op\":\"wait\",\"job\":\"" + job + "\",\"nowait\":true}");
  ASSERT_TRUE(polled.at("ok").as_bool()) << polled.dump();
  EXPECT_TRUE(polled.find("state") != nullptr);

  const json::Value done = server.handle_line(
      "{\"op\":\"wait\",\"job\":\"" + job + "\",\"timeout_ms\":10000}");
  ASSERT_EQ(done.at("state").as_string(), "done") << done.dump();

  // watch over handle_line (no transport to stream over) still blocks
  // until the job settles and returns the final status, sans "event".
  const json::Value watched = server.handle_line(
      "{\"op\":\"watch\",\"job\":\"" + job + "\",\"every_ms\":5}");
  ASSERT_EQ(watched.at("state").as_string(), "done") << watched.dump();
  EXPECT_EQ(watched.find("event"), nullptr);

  const json::Value status = server.handle_line("{\"op\":\"status\"}");
  EXPECT_EQ(status.at("jobs").at("done").as_number(), 1.0);
  EXPECT_EQ(status.at("server").at("port").as_number(),
            static_cast<double>(server.port()));

  const json::Value metrics = server.handle_line("{\"op\":\"metrics\"}");
  EXPECT_TRUE(metrics.at("ok").as_bool());
  EXPECT_NE(metrics.at("text").as_string().find("serve_jobs_done 1"),
            std::string::npos)
      << metrics.at("text").as_string();

  // Identical submission: served from the cache with the result inline.
  const json::Value cached = server.handle_line(
      "{\"op\":\"submit\",\"kind\":\"selftest\","
      "\"params\":{\"sleep_ms\":1,\"tasks\":2}}");
  ASSERT_TRUE(cached.at("ok").as_bool());
  EXPECT_TRUE(cached.at("cached").as_bool());
  EXPECT_EQ(cached.at("result").dump(), done.at("result").dump());
}

TEST(Server, InterruptedCampaignResumesAcrossRestart) {
  const std::string dir = tmp_path("serve_restart");
  wipe_state_dir(dir);
  std::string job;
  {
    Server server(test_server_options(dir));
    const json::Value submitted = server.handle_line(
        "{\"op\":\"submit\",\"kind\":\"selftest\","
        "\"params\":{\"tasks\":8,\"sleep_ms\":100}}");
    ASSERT_TRUE(submitted.at("ok").as_bool()) << submitted.dump();
    job = submitted.at("job").as_string();
    // Drain immediately: most of the 8 tasks are still pending, running
    // ones cancel at the next poll.  The dtor tears the daemon down.
    server.scheduler().drain();
    const json::Value status = server.handle_line(
        "{\"op\":\"job\",\"job\":\"" + job + "\"}");
    EXPECT_NE(status.at("state").as_string(), "done");
  }
  {
    Server server(test_server_options(dir));
    EXPECT_GE(server.scheduler().recovered_jobs(), 1u);
    const json::Value done = server.handle_line(
        "{\"op\":\"wait\",\"job\":\"" + job + "\",\"timeout_ms\":20000}");
    ASSERT_EQ(done.at("state").as_string(), "done") << done.dump();
    EXPECT_EQ(done.at("result").at("tasks").size(), 8u);
  }
}

}  // namespace
}  // namespace nocs::serve
