// Tests for the CDOR area model (Section 3.2's <2% synthesis claim).
#include <gtest/gtest.h>

#include "sprint/area.hpp"

namespace nocs::sprint {
namespace {

TEST(Area, ComponentsPositive) {
  const AreaEstimate a = estimate_router_area(RouterAreaParams{});
  EXPECT_GT(a.buffers, 0.0);
  EXPECT_GT(a.crossbar, 0.0);
  EXPECT_GT(a.allocators, 0.0);
  EXPECT_GT(a.routing_dor, 0.0);
  EXPECT_GT(a.routing_cdor_extra, 0.0);
  EXPECT_NEAR(a.cdor_total(), a.dor_total() + a.routing_cdor_extra, 1e-9);
}

TEST(Area, PaperBoundUnderTwoPercent) {
  // The paper's synthesized bound must hold across every configuration we
  // model, from the Table 1 router down to a minimal switch.
  struct Cfg { int vcs, depth, bits; };
  for (const Cfg c : {Cfg{4, 4, 128}, Cfg{2, 4, 128}, Cfg{2, 2, 64},
                      Cfg{1, 2, 32}}) {
    RouterAreaParams p;
    p.num_vcs = c.vcs;
    p.vc_depth = c.depth;
    p.flit_bits = c.bits;
    const AreaEstimate a = estimate_router_area(p);
    EXPECT_LT(a.overhead(), 0.02)
        << c.vcs << " VCs x " << c.depth << ", " << c.bits << " bits";
  }
}

TEST(Area, BuffersDominateSwitchArea) {
  const AreaEstimate a = estimate_router_area(RouterAreaParams{});
  EXPECT_GT(a.buffers, a.crossbar);
  EXPECT_GT(a.buffers, a.allocators);
  EXPECT_GT(a.buffers, 0.5 * a.dor_total());
}

TEST(Area, OverheadShrinksWithBufferSize) {
  RouterAreaParams small;
  small.num_vcs = 1;
  small.vc_depth = 2;
  small.flit_bits = 32;
  RouterAreaParams big;
  big.num_vcs = 4;
  big.vc_depth = 8;
  big.flit_bits = 128;
  EXPECT_GT(estimate_router_area(small).overhead(),
            estimate_router_area(big).overhead());
}

TEST(Area, CdorExtraIndependentOfBuffers) {
  // The CDOR additions are routing logic only: two connectivity bits and
  // per-port selection gates, insensitive to buffer sizing.
  RouterAreaParams a;
  a.vc_depth = 2;
  RouterAreaParams b;
  b.vc_depth = 16;
  EXPECT_DOUBLE_EQ(estimate_router_area(a).routing_cdor_extra,
                   estimate_router_area(b).routing_cdor_extra);
}

TEST(Area, ScalesWithStructure) {
  RouterAreaParams base;
  RouterAreaParams wide = base;
  wide.flit_bits *= 2;
  EXPECT_GT(estimate_router_area(wide).buffers,
            estimate_router_area(base).buffers);
  EXPECT_GT(estimate_router_area(wide).crossbar,
            estimate_router_area(base).crossbar);

  RouterAreaParams deep = base;
  deep.vc_depth *= 2;
  EXPECT_NEAR(estimate_router_area(deep).buffers,
              2.0 * estimate_router_area(base).buffers, 1e-9);
}

TEST(Area, RejectsInvalidParams) {
  RouterAreaParams p;
  p.flit_bits = 4;
  EXPECT_DEATH(estimate_router_area(p), "precondition");
}

}  // namespace
}  // namespace nocs::sprint
