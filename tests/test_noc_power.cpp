// Tests for the simulator -> power-model bridge.
#include <gtest/gtest.h>

#include "noc/simulator.hpp"
#include "power/noc_power.hpp"
#include "sprint/network_builder.hpp"

namespace nocs::power {
namespace {

noc::NetworkParams params() {
  noc::NetworkParams p;
  p.width = 4;
  p.height = 4;
  return p;
}

struct Models {
  Models()
      : router(RouterPowerParams::from_network(params())),
        link(params().flit_bytes * 8, 2.5, TechNode::k45nm,
             kReferencePoint) {}
  RouterPowerModel router;
  LinkPowerModel link;
};

TEST(NocPower, IdleNetworkIsLeakageOnly) {
  Models m;
  noc::XyRouting xy;
  noc::Network net(params(), &xy);
  net.run(1000);
  const NocPowerEstimate est = estimate_noc_power(net, m.router, m.link, 1000);
  // No traffic: only leakage and clock remain.
  EXPECT_EQ(est.routers.buffer_dynamic, 0.0);
  EXPECT_EQ(est.routers.crossbar_dynamic, 0.0);
  EXPECT_EQ(est.link_dynamic, 0.0);
  EXPECT_NEAR(est.routers.leakage, 16 * m.router.leakage_power(), 1e-9);
  // Link leakage: 48 directed mesh links in a 4x4 (24 bidirectional).
  EXPECT_NEAR(est.link_leakage, 48 * m.link.leakage_power(), 1e-9);
}

TEST(NocPower, TrafficAddsDynamicPower) {
  Models m;
  noc::XyRouting xy;
  noc::Network idle_net(params(), &xy);
  idle_net.run(2000);
  const Watts idle = estimate_noc_power(idle_net, m.router, m.link, 2000).total();

  noc::Network busy_net(params(), &xy);
  busy_net.set_endpoints(busy_net.params().shape().all_nodes(),
                         noc::make_traffic("uniform", 16));
  busy_net.set_injection_rate(0.3);
  busy_net.set_seed(4);
  busy_net.run(2000);
  const Watts busy =
      estimate_noc_power(busy_net, m.router, m.link, 2000).total();
  EXPECT_GT(busy, idle * 1.2);
}

TEST(NocPower, GatedDarkRegionCutsLeakage) {
  Models m;
  noc::XyRouting xy;
  noc::Network net(params(), &xy);
  net.gate_dark_region({0, 1, 4, 5});
  net.run(1000);
  const NocPowerEstimate est = estimate_noc_power(net, m.router, m.link, 1000);
  EXPECT_NEAR(est.routers.leakage, 4 * m.router.leakage_power(), 1e-9);
  // Only the active nodes' outgoing links leak: nodes 0,1,4,5 have
  // degrees 2,3,3,4 in a 4x4 mesh = 12 directed links.
  EXPECT_NEAR(est.link_leakage, 12 * m.link.leakage_power(), 1e-9);
}

TEST(NocPower, SprintingBeatsFullForSameTraffic) {
  Models m;
  noc::SimConfig sim;
  sim.warmup = 500;
  sim.measure = 3000;
  sim.injection_rate = 0.15;

  auto noc_b = sprint::make_noc_sprinting_network(params(), 4, "uniform", 9);
  const noc::SimResults rn = noc::run_simulation(*noc_b.network, sim);
  const Watts noc_w =
      estimate_noc_power(*noc_b.network, m.router, m.link, rn.cycles).total();

  auto full_b =
      sprint::make_full_sprinting_network(params(), 4, "uniform", 9);
  const noc::SimResults rf = noc::run_simulation(*full_b.network, sim);
  const Watts full_w =
      estimate_noc_power(*full_b.network, m.router, m.link, rf.cycles).total();

  // The paper's Figure 11b: large power gap at a 4-core sprint.
  EXPECT_LT(noc_w, 0.6 * full_w);
}

TEST(NocPower, ZeroWindowDies) {
  Models m;
  noc::XyRouting xy;
  noc::Network net(params(), &xy);
  EXPECT_DEATH(estimate_noc_power(net, m.router, m.link, 0), "precondition");
}

}  // namespace
}  // namespace nocs::power
