// Unit and property tests for the mesh geometry primitives.
#include <gtest/gtest.h>

#include "common/geometry.hpp"

namespace nocs {
namespace {

TEST(Coord, EqualityAndOrdering) {
  EXPECT_EQ((Coord{1, 2}), (Coord{1, 2}));
  EXPECT_NE((Coord{1, 2}), (Coord{2, 1}));
  EXPECT_LT((Coord{0, 1}), (Coord{1, 0}));  // lexicographic on (x, y)
}

TEST(Distances, EuclideanSquared) {
  EXPECT_EQ(euclidean_sq({0, 0}, {0, 0}), 0);
  EXPECT_EQ(euclidean_sq({0, 0}, {3, 4}), 25);
  EXPECT_EQ(euclidean_sq({1, 1}, {0, 0}), 2);
  // Symmetric.
  EXPECT_EQ(euclidean_sq({2, 5}, {7, 1}), euclidean_sq({7, 1}, {2, 5}));
}

TEST(Distances, EuclideanMatchesSquareRoot) {
  EXPECT_DOUBLE_EQ(euclidean({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(euclidean({1, 1}, {1, 1}), 0.0);
}

TEST(Distances, ManhattanAndHammingAgree) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(hamming({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({5, 2}, {1, 7}), 9);
}

TEST(Distances, TriangleInequalityManhattan) {
  const Coord pts[] = {{0, 0}, {3, 1}, {1, 4}, {2, 2}, {4, 0}};
  for (const Coord a : pts)
    for (const Coord b : pts)
      for (const Coord c : pts)
        EXPECT_LE(manhattan(a, c), manhattan(a, b) + manhattan(b, c));
}

TEST(MeshShape, IndexCoordRoundTrip4x4) {
  const MeshShape m(4, 4);
  EXPECT_EQ(m.size(), 16);
  for (NodeId id = 0; id < m.size(); ++id)
    EXPECT_EQ(m.id_of(m.coord_of(id)), id);
}

TEST(MeshShape, RowMajorFromTopLeft) {
  const MeshShape m(4, 4);
  EXPECT_EQ(m.coord_of(0), (Coord{0, 0}));
  EXPECT_EQ(m.coord_of(1), (Coord{1, 0}));
  EXPECT_EQ(m.coord_of(4), (Coord{0, 1}));
  EXPECT_EQ(m.coord_of(15), (Coord{3, 3}));
  // The paper's Figure 5a example: node 5 is (1,1), node 9 is (1,2).
  EXPECT_EQ(m.coord_of(5), (Coord{1, 1}));
  EXPECT_EQ(m.coord_of(9), (Coord{1, 2}));
}

TEST(MeshShape, RectangularMesh) {
  const MeshShape m(8, 2);
  EXPECT_EQ(m.size(), 16);
  EXPECT_EQ(m.coord_of(8), (Coord{0, 1}));
  EXPECT_TRUE(m.contains({7, 1}));
  EXPECT_FALSE(m.contains({8, 0}));
  EXPECT_FALSE(m.contains({0, 2}));
  EXPECT_FALSE(m.contains({-1, 0}));
}

TEST(MeshShape, AllNodesRowMajor) {
  const MeshShape m(3, 2);
  const std::vector<NodeId> nodes = m.all_nodes();
  ASSERT_EQ(nodes.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(nodes[static_cast<std::size_t>(i)], i);
}

TEST(Ports, OppositeIsInvolution) {
  for (Port p : {Port::kNorth, Port::kEast, Port::kSouth, Port::kWest})
    EXPECT_EQ(opposite(opposite(p)), p);
}

TEST(Ports, StepDirections) {
  const Coord c{2, 2};
  EXPECT_EQ(step(c, Port::kNorth), (Coord{2, 1}));  // y shrinks northwards
  EXPECT_EQ(step(c, Port::kSouth), (Coord{2, 3}));
  EXPECT_EQ(step(c, Port::kEast), (Coord{3, 2}));
  EXPECT_EQ(step(c, Port::kWest), (Coord{1, 2}));
  EXPECT_EQ(step(c, Port::kLocal), c);
}

TEST(Ports, StepThenOppositeReturns) {
  const Coord c{1, 1};
  for (Port p : {Port::kNorth, Port::kEast, Port::kSouth, Port::kWest})
    EXPECT_EQ(step(step(c, p), opposite(p)), c);
}

TEST(Ports, ToString) {
  EXPECT_EQ(to_string(Port::kLocal), "local");
  EXPECT_EQ(to_string(Port::kNorth), "north");
  EXPECT_EQ(to_string(Coord{3, 1}), "(3,1)");
}

// Property sweep: id<->coord bijection over many mesh shapes.
class MeshShapeSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MeshShapeSweep, BijectionAndContainment) {
  const auto [w, h] = GetParam();
  const MeshShape m(w, h);
  EXPECT_EQ(m.size(), w * h);
  std::vector<bool> seen(static_cast<std::size_t>(m.size()), false);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const Coord c{x, y};
      EXPECT_TRUE(m.contains(c));
      const NodeId id = m.id_of(c);
      EXPECT_TRUE(m.valid(id));
      EXPECT_FALSE(seen[static_cast<std::size_t>(id)]);
      seen[static_cast<std::size_t>(id)] = true;
      EXPECT_EQ(m.coord_of(id), c);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MeshShapeSweep,
                         ::testing::Values(std::pair{2, 2}, std::pair{4, 4},
                                           std::pair{8, 8}, std::pair{5, 3},
                                           std::pair{2, 9}, std::pair{16, 1}));

}  // namespace
}  // namespace nocs
