// Cycle-level tests for the five-stage router: pipeline timing, credit
// flow, wormhole ordering, and the power-gating state machine.
#include <gtest/gtest.h>

#include "noc/router.hpp"

namespace nocs::noc {
namespace {

/// Harness wiring one router's local input and all outputs to test pipes.
class RouterHarness {
 public:
  explicit RouterHarness(NodeId id = 5, NetworkParams params = {})
      : params_(params), router_(id, params, &xy_) {
    for (int p = 0; p < kNumPorts; ++p) {
      in_flits_.emplace_back(std::make_unique<Pipe<Flit>>(1));
      in_credits_.emplace_back(std::make_unique<Pipe<Credit>>(1));
      out_flits_.emplace_back(std::make_unique<Pipe<Flit>>(1));
      out_credits_.emplace_back(std::make_unique<Pipe<Credit>>(1));
      router_.connect_input(static_cast<Port>(p), in_flits_.back().get(),
                            in_credits_.back().get());
      router_.connect_output(static_cast<Port>(p), out_flits_.back().get(),
                             out_credits_.back().get());
    }
  }

  /// Sends one flit into `port` at the current cycle.
  void inject(Port port, const Flit& f) {
    in_flits_[static_cast<std::size_t>(port)]->push(now_, f);
  }

  void tick() { router_.tick(now_++); }

  /// Ticks until `port`'s output pipe has a flit or `budget` cycles pass.
  bool tick_until_output(Port port, int budget) {
    for (int i = 0; i < budget; ++i) {
      if (out_flits_[static_cast<std::size_t>(port)]->ready(now_))
        return true;
      tick();
    }
    return out_flits_[static_cast<std::size_t>(port)]->ready(now_);
  }

  Flit take_output(Port port) {
    return out_flits_[static_cast<std::size_t>(port)]->pop(now_);
  }

  bool credit_returned(Port port) {
    return in_credits_[static_cast<std::size_t>(port)]->ready(now_);
  }

  Cycle now() const { return now_; }
  Router& router() { return router_; }

  Flit make_flit(NodeId dst, VcId vc, bool head = true, bool tail = true,
                 int index = 0) {
    Flit f;
    f.packet = 1;
    f.index = index;
    f.is_head = head;
    f.is_tail = tail;
    f.src = 0;
    f.dst = dst;
    f.vc = vc;
    return f;
  }

 private:
  NetworkParams params_;
  XyRouting xy_;
  Router router_;
  Cycle now_ = 0;
  std::vector<std::unique_ptr<Pipe<Flit>>> in_flits_;
  std::vector<std::unique_ptr<Pipe<Credit>>> in_credits_;
  std::vector<std::unique_ptr<Pipe<Flit>>> out_flits_;
  std::vector<std::unique_ptr<Pipe<Credit>>> out_credits_;
};

TEST(Router, FiveStagePipelineLatency) {
  RouterHarness h;  // node 5 = (1,1) in the 4x4 mesh
  // Destination (3,1): XY routes east.
  h.inject(Port::kLocal, h.make_flit(/*dst=*/7, /*vc=*/0));
  // Inject at cycle 0, link latency 1 => BW at cycle 1; RC 2; VA 3; SA 4;
  // ST 5 => flit on the output pipe, visible downstream at cycle 6.
  ASSERT_TRUE(h.tick_until_output(Port::kEast, 20));
  EXPECT_EQ(h.now(), 6u);
  const Flit out = h.take_output(Port::kEast);
  EXPECT_EQ(out.dst, 7);
  EXPECT_EQ(out.hops, 1);
}

TEST(Router, RoutesEachDirectionAndLocal) {
  struct Case { NodeId dst; Port expect; };
  const Case cases[] = {
      {7, Port::kEast},   // (3,1) east of (1,1)
      {4, Port::kWest},   // (0,1)
      {1, Port::kNorth},  // (1,0)
      {13, Port::kSouth}, // (1,3)
      {5, Port::kLocal},  // self: ejects to the local port
  };
  for (const Case& c : cases) {
    RouterHarness h;
    h.inject(c.dst == 5 ? Port::kWest : Port::kLocal,
             h.make_flit(c.dst, 0));
    ASSERT_TRUE(h.tick_until_output(c.expect, 20))
        << "dst " << c.dst << " expected " << to_string(c.expect);
  }
}

TEST(Router, CreditReturnedWhenFlitLeavesBuffer) {
  RouterHarness h;
  h.inject(Port::kLocal, h.make_flit(7, 0));
  ASSERT_TRUE(h.tick_until_output(Port::kEast, 20));
  // ST at cycle 5 sends the credit upstream (1-cycle credit pipe): ready
  // at cycle 6, which is `now` after tick_until_output stops.
  EXPECT_TRUE(h.credit_returned(Port::kLocal));
}

TEST(Router, WormholeKeepsPacketContiguousOnVc) {
  RouterHarness h;
  // 3-flit packet: head, body, tail on VC 2.
  h.inject(Port::kLocal, h.make_flit(7, 2, true, false, 0));
  h.tick();
  h.inject(Port::kLocal, h.make_flit(7, 2, false, false, 1));
  h.tick();
  h.inject(Port::kLocal, h.make_flit(7, 2, false, true, 2));
  int received = 0;
  VcId out_vc = -1;
  for (int i = 0; i < 30 && received < 3; ++i) {
    if (h.tick_until_output(Port::kEast, 30 - i)) {
      const Flit f = h.take_output(Port::kEast);
      EXPECT_EQ(f.index, received);  // in order
      if (received == 0)
        out_vc = f.vc;  // VA picks the downstream VC freely...
      else
        EXPECT_EQ(f.vc, out_vc);  // ...but the whole packet stays on it
      ++received;
    }
  }
  EXPECT_EQ(received, 3);
  EXPECT_TRUE(h.router().drained());
}

TEST(Router, BackToBackPacketsOnSameVc) {
  RouterHarness h;
  // Two single-flit packets on VC 1; second head queues behind first tail.
  h.inject(Port::kLocal, h.make_flit(7, 1));
  h.tick();
  h.inject(Port::kLocal, h.make_flit(7, 1));
  int received = 0;
  for (int i = 0; i < 40 && received < 2; ++i) {
    if (h.tick_until_output(Port::kEast, 40)) {
      h.take_output(Port::kEast);
      ++received;
    }
  }
  EXPECT_EQ(received, 2);
}

TEST(Router, StallsWithoutDownstreamCredits) {
  NetworkParams p;
  p.vc_depth = 1;  // single credit per VC
  RouterHarness h(5, p);
  // Two single-flit packets on the same VC; the downstream credit is never
  // returned, so only one flit may leave.
  h.inject(Port::kLocal, h.make_flit(7, 0));
  ASSERT_TRUE(h.tick_until_output(Port::kEast, 20));
  h.take_output(Port::kEast);
  h.inject(Port::kLocal, h.make_flit(7, 0));
  EXPECT_FALSE(h.tick_until_output(Port::kEast, 20));  // stalled
  EXPECT_GT(h.router().buffered_flits(), 0);
}

TEST(Router, CountersTrackActivity) {
  RouterHarness h;
  h.inject(Port::kLocal, h.make_flit(7, 0));
  ASSERT_TRUE(h.tick_until_output(Port::kEast, 20));
  const RouterCounters& c = h.router().counters();
  EXPECT_EQ(c.buffer_writes, 1u);
  EXPECT_EQ(c.buffer_reads, 1u);
  EXPECT_EQ(c.xbar_traversals, 1u);
  EXPECT_EQ(c.vc_allocs, 1u);
  EXPECT_EQ(c.sa_arbitrations, 1u);
  EXPECT_EQ(c.link_flits, 1u);
  EXPECT_EQ(c.active_cycles, h.now());
  EXPECT_EQ(c.gated_cycles, 0u);
}

TEST(Router, EjectedFlitsDoNotCountAsLinkTraversals) {
  RouterHarness h;
  h.inject(Port::kWest, h.make_flit(5, 0));  // destined to this node
  ASSERT_TRUE(h.tick_until_output(Port::kLocal, 20));
  const Flit f = h.take_output(Port::kLocal);
  EXPECT_EQ(f.hops, 0);  // local ejection adds no hop
  EXPECT_EQ(h.router().counters().link_flits, 0u);
}

TEST(Router, StaticGatingBlocksAndCounts) {
  RouterHarness h;
  h.router().set_gated(true);
  EXPECT_EQ(h.router().power_state(), PowerState::kGated);
  for (int i = 0; i < 10; ++i) h.tick();
  EXPECT_EQ(h.router().counters().gated_cycles, 10u);
  EXPECT_EQ(h.router().counters().active_cycles, 0u);
}

TEST(Router, ArrivalAtStaticallyGatedRouterDies) {
  RouterHarness h;
  h.router().set_gated(true);
  h.inject(Port::kWest, h.make_flit(7, 0));
  h.tick();  // flit not yet visible (link latency)
  EXPECT_DEATH(h.tick(), "precondition");
}

TEST(Router, WakeOnArrivalAfterLatency) {
  NetworkParams p;
  p.wakeup_latency = 5;
  RouterHarness h(5, p);
  h.router().set_allow_wakeup(true);
  h.router().set_gated(true);
  h.inject(Port::kWest, h.make_flit(7, 0));
  ASSERT_TRUE(h.tick_until_output(Port::kEast, 40));
  const RouterCounters& c = h.router().counters();
  EXPECT_EQ(c.wake_events, 1u);
  EXPECT_EQ(c.waking_cycles, 5u);
  // Total latency = gated detection + wake + normal pipeline.
  EXPECT_GE(h.now(), 6u + 5u);
}

TEST(Router, DynamicGatingEngagesAfterIdleThreshold) {
  NetworkParams p;
  p.gate_idle_threshold = 4;
  RouterHarness h(5, p);
  h.router().set_dynamic_gating(true);
  for (int i = 0; i < 10; ++i) h.tick();
  EXPECT_EQ(h.router().power_state(), PowerState::kGated);
  EXPECT_GT(h.router().counters().gated_cycles, 0u);
}

TEST(Router, DrainedReflectsBufferedState) {
  RouterHarness h;
  EXPECT_TRUE(h.router().drained());
  h.inject(Port::kLocal, h.make_flit(7, 0));
  h.tick();
  h.tick();  // flit buffered now
  EXPECT_FALSE(h.router().drained());
  ASSERT_TRUE(h.tick_until_output(Port::kEast, 20));
  EXPECT_TRUE(h.router().drained());
}

TEST(Router, GatingRequiresDrained) {
  RouterHarness h;
  h.inject(Port::kLocal, h.make_flit(7, 0));
  h.tick();
  h.tick();
  EXPECT_DEATH(h.router().set_gated(true), "precondition");
}

}  // namespace
}  // namespace nocs::noc
