// Network-level tests: construction, end-to-end delivery, conservation
// invariants across router counters.
#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "noc/simulator.hpp"

namespace nocs::noc {
namespace {

NetworkParams small_params() {
  NetworkParams p;
  p.width = 4;
  p.height = 4;
  return p;
}

TEST(Network, ConstructionWiresAllNodes) {
  const NetworkParams p = small_params();
  XyRouting xy;
  Network net(p, &xy);
  EXPECT_EQ(net.num_nodes(), 16);
  EXPECT_EQ(net.now(), 0u);
  EXPECT_TRUE(net.drained());
  for (NodeId id = 0; id < 16; ++id) {
    EXPECT_EQ(net.router(id).id(), id);
    EXPECT_EQ(net.ni(id).id(), id);
  }
}

TEST(Network, SinglePacketDelivery) {
  const NetworkParams p = small_params();
  XyRouting xy;
  Network net(p, &xy);
  net.ni(0).send_packet(net.now(), 15);
  for (int i = 0; i < 100 && !net.drained(); ++i) net.tick();
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.ni(15).total_ejected_flits(),
            static_cast<std::uint64_t>(p.packet_length));
}

TEST(Network, PacketLatencyIsDeterministic) {
  // Two identical runs produce identical ejection cycles.
  auto run_once = [] {
    const NetworkParams p = small_params();
    XyRouting xy;
    Network net(p, &xy);
    net.ni(0).send_packet(net.now(), 10);
    Cycle done = 0;
    for (int i = 0; i < 200; ++i) {
      net.tick();
      if (net.ni(10).total_ejected_flits() == 5 && done == 0) done = net.now();
    }
    return done;
  };
  EXPECT_EQ(run_once(), run_once());
  EXPECT_GT(run_once(), 0u);
}

TEST(Network, AllPairsDelivery) {
  const NetworkParams p = small_params();
  XyRouting xy;
  Network net(p, &xy);
  // One packet for every ordered pair, injected over time.
  int expected_per_node[16] = {};
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s == d) continue;
      net.ni(s).send_packet(net.now(), d);
      ++expected_per_node[d];
    }
  }
  for (int i = 0; i < 20000 && !net.drained(); ++i) net.tick();
  EXPECT_TRUE(net.drained());
  for (NodeId d = 0; d < 16; ++d)
    EXPECT_EQ(net.ni(d).total_ejected_flits(),
              static_cast<std::uint64_t>(expected_per_node[d]) *
                  static_cast<std::uint64_t>(p.packet_length))
        << "node " << d;
}

TEST(Network, CounterConservation) {
  const NetworkParams p = small_params();
  XyRouting xy;
  Network net(p, &xy);
  std::vector<NodeId> all = net.params().shape().all_nodes();
  net.set_endpoints(all, make_traffic("uniform", 16));
  net.set_injection_rate(0.2);
  net.set_seed(99);
  net.run(3000);
  net.set_injection_rate(0.0);
  for (int i = 0; i < 20000 && !net.drained(); ++i) net.tick();
  ASSERT_TRUE(net.drained());

  const RouterCounters c = net.total_counters();
  // Every buffered flit was eventually read and crossed the crossbar.
  EXPECT_EQ(c.buffer_writes, c.buffer_reads);
  EXPECT_EQ(c.buffer_reads, c.xbar_traversals);
  // Every flit that entered the network left through some local port:
  // crossbar traversals = link traversals + ejections.
  std::uint64_t ejected = 0, injected_flits = 0;
  for (NodeId id = 0; id < 16; ++id) {
    ejected += net.ni(id).total_ejected_flits();
    injected_flits +=
        net.ni(id).total_generated() * static_cast<std::uint64_t>(p.packet_length);
  }
  EXPECT_EQ(c.xbar_traversals, c.link_flits + ejected);
  // All generated flits were delivered.
  EXPECT_EQ(ejected, injected_flits);
  // One VC allocation and at least one SA grant per packet per hop... at
  // minimum, VC allocs equal the number of (packet, router) pairs, which
  // is bounded below by packets and above by buffer writes.
  EXPECT_GE(c.vc_allocs, injected_flits / static_cast<std::uint64_t>(p.packet_length));
  EXPECT_LE(c.vc_allocs, c.buffer_writes);
}

TEST(Network, GateDarkRegionOnlyTicksActive) {
  const NetworkParams p = small_params();
  XyRouting xy;
  Network net(p, &xy);
  const std::vector<NodeId> active = {0, 1, 4, 5};
  net.gate_dark_region(active);
  net.run(50);
  for (NodeId id = 0; id < 16; ++id) {
    const bool is_active =
        std::find(active.begin(), active.end(), id) != active.end();
    EXPECT_EQ(net.router(id).counters().active_cycles, is_active ? 50u : 0u)
        << "node " << id;
    EXPECT_EQ(net.router(id).counters().gated_cycles, is_active ? 0u : 50u)
        << "node " << id;
  }
  net.ungate_all();
  net.run(10);
  EXPECT_EQ(net.router(15).counters().active_cycles, 10u);
}

TEST(Network, SetSeedReproducesTraffic) {
  auto run_once = [] {
    const NetworkParams p = small_params();
    XyRouting xy;
    Network net(p, &xy);
    net.set_endpoints(net.params().shape().all_nodes(),
                      make_traffic("uniform", 16));
    net.set_injection_rate(0.3);
    net.set_seed(1234);
    net.run(2000);
    return net.total_counters().buffer_writes;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Network, EndpointSubsetOnlyThoseInject) {
  const NetworkParams p = small_params();
  XyRouting xy;
  Network net(p, &xy);
  net.set_endpoints({0, 1, 4, 5}, make_traffic("uniform", 4));
  net.set_injection_rate(0.3);
  net.set_seed(5);
  net.run(2000);
  for (NodeId id : {2, 3, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
    EXPECT_EQ(net.ni(id).total_generated(), 0u) << "node " << id;
  EXPECT_GT(net.ni(0).total_generated(), 0u);
  EXPECT_GT(net.ni(5).total_generated(), 0u);
}

TEST(Network, ResetCountersClears) {
  const NetworkParams p = small_params();
  XyRouting xy;
  Network net(p, &xy);
  net.run(10);
  EXPECT_GT(net.total_counters().active_cycles, 0u);
  net.reset_counters();
  EXPECT_EQ(net.total_counters().active_cycles, 0u);
}

TEST(Network, RectangularMeshDelivers) {
  NetworkParams p;
  p.width = 8;
  p.height = 2;
  XyRouting xy;
  Network net(p, &xy);
  net.ni(0).send_packet(net.now(), 15);  // (7,1)
  for (int i = 0; i < 200 && !net.drained(); ++i) net.tick();
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.ni(15).total_ejected_flits(), 5u);
}

}  // namespace
}  // namespace nocs::noc
