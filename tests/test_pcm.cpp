// Tests for the phase-change-material sprint-duration model.
#include <gtest/gtest.h>

#include "thermal/pcm.hpp"

namespace nocs::thermal {
namespace {

TEST(PcmParams, DerivedQuantities) {
  PcmParams p;
  EXPECT_NEAR(p.sustainable_at_melt(), (p.t_melt - p.ambient) / p.r_th,
              1e-12);
  EXPECT_NEAR(p.sustainable_at_max(), (p.t_max - p.ambient) / p.r_th, 1e-12);
  EXPECT_NEAR(p.latent_budget(), p.pcm_mass_g * p.latent_heat_j_per_g,
              1e-12);
  EXPECT_GT(p.sustainable_at_max(), p.sustainable_at_melt());
}

TEST(Pcm, DefaultTdpMatchesNominalChipPower) {
  // Calibration invariant: the TDP is ~20 W, the 16-core chip's nominal
  // power — nominal operation is exactly sustainable.
  PcmParams p;
  EXPECT_NEAR(p.sustainable_at_max(), 20.0, 0.5);
}

TEST(Pcm, FullSprintLastsAboutOneSecond) {
  // The paper assumes the chip sustains a worst-case (16-core, ~79 W)
  // sprint for about one second.
  const PcmModel m{PcmParams{}};
  const SprintTimeline tl = m.sprint_timeline(79.0);
  EXPECT_FALSE(tl.unbounded);
  EXPECT_GT(tl.total(), 0.5);
  EXPECT_LT(tl.total(), 1.5);
}

TEST(Pcm, SustainablePowerIsUnbounded) {
  const PcmModel m{PcmParams{}};
  const SprintTimeline low = m.sprint_timeline(5.0);  // below melt threshold
  EXPECT_TRUE(low.unbounded);
  const SprintTimeline mid = m.sprint_timeline(15.0);  // melt equilibrium
  EXPECT_TRUE(mid.unbounded);
  EXPECT_EQ(m.sprint_duration(5.0, 10.0), 10.0);  // capped
}

TEST(Pcm, AllPhasesPositiveWhenUnsustainable) {
  const PcmModel m{PcmParams{}};
  const SprintTimeline tl = m.sprint_timeline(60.0);
  EXPECT_FALSE(tl.unbounded);
  EXPECT_GT(tl.phase1, 0.0);
  EXPECT_GT(tl.phase2, 0.0);
  EXPECT_GT(tl.phase3, 0.0);
}

TEST(Pcm, DurationMonotonicallyShrinksWithPower) {
  const PcmModel m{PcmParams{}};
  double prev = 1e18;
  for (double p : {30.0, 45.0, 60.0, 80.0, 120.0}) {
    const double d = m.sprint_duration(p, 1e6);
    EXPECT_LT(d, prev) << p;
    prev = d;
  }
}

TEST(Pcm, LowerPowerLengthensEveryPhase) {
  // The mechanism behind the paper's +55.4%: NoC-sprinting reduces the
  // slopes of phases 1 & 3 and stretches the melt phase.
  const PcmModel m{PcmParams{}};
  const SprintTimeline full = m.sprint_timeline(79.0);
  const SprintTimeline noc = m.sprint_timeline(40.0);
  EXPECT_GT(noc.phase1, full.phase1);
  EXPECT_GT(noc.phase2, full.phase2);
  EXPECT_GT(noc.phase3, full.phase3);
}

TEST(Pcm, MeltPhaseInverseInExcessPower) {
  PcmParams p;
  const PcmModel m(p);
  const double sus = p.sustainable_at_melt();
  const SprintTimeline a = m.sprint_timeline(sus + 10.0);
  const SprintTimeline b = m.sprint_timeline(sus + 20.0);
  EXPECT_NEAR(a.phase2 / b.phase2, 2.0, 1e-9);
}

TEST(Pcm, MoreLatentHeatLongerMelt) {
  PcmParams small;
  PcmParams big = small;
  big.pcm_mass_g *= 3.0;
  EXPECT_NEAR(PcmModel(big).sprint_timeline(60.0).phase2,
              3.0 * PcmModel(small).sprint_timeline(60.0).phase2, 1e-9);
}

TEST(Pcm, TemperatureTrajectoryShape) {
  PcmParams p;
  const PcmModel m(p);
  const double power = 79.0;
  const SprintTimeline tl = m.sprint_timeline(power);

  // Starts at ambient, rises during phase 1.
  EXPECT_NEAR(m.temperature_at(power, 0.0), p.ambient, 1e-9);
  EXPECT_GT(m.temperature_at(power, tl.phase1 * 0.5), p.ambient);
  EXPECT_LT(m.temperature_at(power, tl.phase1 * 0.5), p.t_melt);

  // Plateau at t_melt during phase 2 (the PCM's defining property).
  EXPECT_NEAR(m.temperature_at(power, tl.phase1 + tl.phase2 * 0.5), p.t_melt,
              1e-9);

  // Rises again in phase 3, capped at t_max.
  const double in3 = tl.phase1 + tl.phase2 + tl.phase3 * 0.5;
  EXPECT_GT(m.temperature_at(power, in3), p.t_melt);
  EXPECT_LE(m.temperature_at(power, tl.total() + 10.0), p.t_max);
}

TEST(Pcm, TrajectoryMonotonicNonDecreasing) {
  const PcmModel m{PcmParams{}};
  double prev = 0.0;
  for (double t = 0.0; t < 3.0; t += 0.01) {
    const double temp = m.temperature_at(60.0, t);
    EXPECT_GE(temp + 1e-9, prev);
    prev = temp;
  }
}

TEST(Pcm, SustainableTrajectorySaturatesBelowMelt) {
  PcmParams p;
  const PcmModel m(p);
  const double power = 5.0;  // well below everything
  const double t_inf = p.ambient + power * p.r_th;
  EXPECT_LT(t_inf, p.t_melt);
  EXPECT_NEAR(m.temperature_at(power, 1e3), t_inf, 0.1);
}

TEST(Pcm, InvalidParamsRejected) {
  PcmParams p;
  p.t_melt = p.t_max + 1.0;
  EXPECT_DEATH(PcmModel{p}, "precondition");
}

}  // namespace
}  // namespace nocs::thermal
