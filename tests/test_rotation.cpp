// Tests for thermal-aware sprint rotation.
#include <gtest/gtest.h>

#include "sprint/rotation.hpp"

namespace nocs::sprint {
namespace {

thermal::GridThermalParams slow_thermals() {
  thermal::GridThermalParams gp;
  gp.c_per_area = 16500.0;  // include spreader mass: tau ~ 0.7 s
  return gp;
}

TEST(Rotation, ColdChipPrefersDefaultCorner) {
  const MeshShape mesh(4, 4);
  const thermal::GridThermalModel model(slow_thermals(), 12.0, 12.0);
  const auto field = model.ambient_field();
  EXPECT_EQ(coolest_corner_master(field, mesh, 4), 0);  // tie -> node 0
}

TEST(Rotation, AvoidsTheHeatedCorner) {
  const MeshShape mesh(4, 4);
  SprintRotationSim sim(mesh, slow_thermals(), power::ChipPowerParams{},
                        12.0);
  // Heat the top-left region with a fixed-master burst.
  sim.run_burst(4, 0.3, 0.0, /*rotate=*/false);
  const NodeId next = coolest_corner_master(sim.field(), mesh, 4);
  EXPECT_NE(next, 0);  // anywhere but the hot corner
}

TEST(Rotation, RegionTemperatureTracksHeating) {
  const MeshShape mesh(4, 4);
  SprintRotationSim sim(mesh, slow_thermals(), power::ChipPowerParams{},
                        12.0);
  const double before = region_temperature(sim.field(), mesh, 0, 4);
  sim.run_burst(4, 0.3, 0.0, false);
  const double after_hot = region_temperature(sim.field(), mesh, 0, 4);
  const double after_far = region_temperature(sim.field(), mesh, 15, 4);
  EXPECT_GT(after_hot, before + 3.0);
  EXPECT_LT(after_far, after_hot - 3.0);  // opposite corner stayed cooler
}

TEST(Rotation, LowersRunningPeakOverBurstTrain) {
  const MeshShape mesh(4, 4);
  SprintRotationSim fixed(mesh, slow_thermals(), power::ChipPowerParams{},
                          12.0);
  SprintRotationSim rotated(mesh, slow_thermals(), power::ChipPowerParams{},
                            12.0);
  Kelvin fixed_peak = 0.0, rotated_peak = 0.0;
  for (int b = 0; b < 6; ++b) {
    fixed_peak = fixed.run_burst(4, 0.3, 0.3, false).peak_after;
    rotated_peak = rotated.run_burst(4, 0.3, 0.3, true).peak_after;
  }
  EXPECT_LT(rotated_peak, fixed_peak - 3.0);
}

TEST(Rotation, FixedModeAlwaysUsesMasterZero) {
  const MeshShape mesh(4, 4);
  SprintRotationSim sim(mesh, slow_thermals(), power::ChipPowerParams{},
                        12.0);
  for (int b = 0; b < 4; ++b)
    EXPECT_EQ(sim.run_burst(4, 0.2, 0.1, false).master, 0);
}

TEST(Rotation, RotatingMastersAreCorners) {
  const MeshShape mesh(4, 4);
  SprintRotationSim sim(mesh, slow_thermals(), power::ChipPowerParams{},
                        12.0);
  for (int b = 0; b < 6; ++b) {
    const NodeId m = sim.run_burst(4, 0.3, 0.1, true).master;
    EXPECT_TRUE(m == 0 || m == 3 || m == 12 || m == 15) << m;
  }
}

TEST(Rotation, ResetReturnsToAmbient) {
  const MeshShape mesh(4, 4);
  SprintRotationSim sim(mesh, slow_thermals(), power::ChipPowerParams{},
                        12.0);
  sim.run_burst(8, 0.5, 0.0, false);
  EXPECT_GT(sim.field().peak(), slow_thermals().ambient + 5.0);
  sim.reset();
  EXPECT_NEAR(sim.field().peak(), slow_thermals().ambient, 1e-9);
}

TEST(Rotation, FullSprintHasNoCoolCornerToFind) {
  // At level 16 every corner's region is the whole chip: all equal.
  const MeshShape mesh(4, 4);
  const thermal::GridThermalModel model(slow_thermals(), 12.0, 12.0);
  const auto field = model.ambient_field();
  EXPECT_EQ(coolest_corner_master(field, mesh, 16), 0);
}

}  // namespace
}  // namespace nocs::sprint
