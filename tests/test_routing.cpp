// Property tests for the baseline dimension-order routing functions.
#include <gtest/gtest.h>

#include "noc/routing.hpp"

namespace nocs::noc {
namespace {

/// Walks the route from src to dst, returning the hop count; fails the
/// test if the walk leaves the mesh or exceeds the hop budget.
int walk(const RoutingFunction& rf, const MeshShape& mesh, Coord src,
         Coord dst) {
  Coord cur = src;
  int hops = 0;
  const int budget = mesh.width() + mesh.height() + 2;
  while (cur != dst) {
    const Port p = rf.route(cur, dst);
    EXPECT_NE(p, Port::kLocal) << "stalled at " << to_string(cur);
    cur = step(cur, p);
    EXPECT_TRUE(mesh.contains(cur));
    ++hops;
    EXPECT_LE(hops, budget) << "livelock from " << to_string(src) << " to "
                            << to_string(dst);
    if (hops > budget) break;
  }
  return hops;
}

class DorSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DorSweep, XyDeliversAllPairsMinimally) {
  const auto [w, h] = GetParam();
  const MeshShape mesh(w, h);
  const XyRouting xy;
  for (NodeId s = 0; s < mesh.size(); ++s) {
    for (NodeId d = 0; d < mesh.size(); ++d) {
      const Coord src = mesh.coord_of(s);
      const Coord dst = mesh.coord_of(d);
      if (s == d) {
        EXPECT_EQ(xy.route(src, dst), Port::kLocal);
        continue;
      }
      EXPECT_EQ(walk(xy, mesh, src, dst), manhattan(src, dst));
    }
  }
}

TEST_P(DorSweep, YxDeliversAllPairsMinimally) {
  const auto [w, h] = GetParam();
  const MeshShape mesh(w, h);
  const YxRouting yx;
  for (NodeId s = 0; s < mesh.size(); ++s) {
    for (NodeId d = 0; d < mesh.size(); ++d) {
      if (s != d) {
        EXPECT_EQ(walk(yx, mesh, mesh.coord_of(s), mesh.coord_of(d)),
                  manhattan(mesh.coord_of(s), mesh.coord_of(d)));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Meshes, DorSweep,
                         ::testing::Values(std::pair{2, 2}, std::pair{4, 4},
                                           std::pair{8, 8}, std::pair{3, 5},
                                           std::pair{6, 2}));

TEST(XyRouting, ExhaustsXBeforeY) {
  const XyRouting xy;
  EXPECT_EQ(xy.route({0, 0}, {2, 2}), Port::kEast);
  EXPECT_EQ(xy.route({2, 0}, {2, 2}), Port::kSouth);
  EXPECT_EQ(xy.route({3, 3}, {1, 1}), Port::kWest);
  EXPECT_EQ(xy.route({1, 3}, {1, 1}), Port::kNorth);
}

TEST(XyRouting, OnlyLegalTurns) {
  // XY-DOR never turns from a Y move back to an X move: once the route
  // leaves the X dimension it must stay in Y.  Verify on every 4x4 pair.
  const MeshShape mesh(4, 4);
  const XyRouting xy;
  for (NodeId s = 0; s < mesh.size(); ++s) {
    for (NodeId d = 0; d < mesh.size(); ++d) {
      if (s == d) continue;
      Coord cur = mesh.coord_of(s);
      const Coord dst = mesh.coord_of(d);
      bool seen_y = false;
      while (cur != dst) {
        const Port p = xy.route(cur, dst);
        const bool is_y = p == Port::kNorth || p == Port::kSouth;
        if (seen_y) {
          EXPECT_TRUE(is_y);
        }
        seen_y = seen_y || is_y;
        cur = step(cur, p);
      }
    }
  }
}

TEST(RoutingFunction, Names) {
  EXPECT_STREQ(XyRouting{}.name(), "xy-dor");
  EXPECT_STREQ(YxRouting{}.name(), "yx-dor");
}

}  // namespace
}  // namespace nocs::noc
