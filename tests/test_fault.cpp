// Tests for the fault-injection framework: injector determinism,
// end-to-end retransmission recovery, the livelock watchdog, the
// fault-tolerant CDOR detour, wake-failure retries, and graceful sprint
// degradation.
#include <gtest/gtest.h>

#include <memory>

#include "cmp/perf_model.hpp"
#include "fault/fault_injector.hpp"
#include "fault/watchdog.hpp"
#include "noc/parallel_sweep.hpp"
#include "noc/simulator.hpp"
#include "power/chip_power.hpp"
#include "sprint/cdor.hpp"
#include "sprint/network_builder.hpp"
#include "sprint/online_adapt.hpp"
#include "sprint/sprint_controller.hpp"
#include "sprint/topology.hpp"
#include "thermal/pcm.hpp"

namespace nocs {
namespace {

fault::FaultParams storm_params() {
  fault::FaultParams fp;
  fp.enabled = true;
  fp.seed = 42;
  fp.flip_rate = 0.002;
  fp.drop_rate = 0.01;
  fp.link_down_rate = 0.0005;
  fp.link_down_cycles = 30;
  fp.ack_timeout = 200;
  fp.max_backoff = 2000;
  return fp;
}

struct FaultRig {
  std::unique_ptr<noc::RoutingFunction> routing;
  std::unique_ptr<noc::Network> net;
  std::unique_ptr<fault::FaultInjector> injector;
};

FaultRig make_rig(const fault::FaultParams& fp, int level,
                  std::uint64_t seed) {
  noc::NetworkParams params;
  auto bundle =
      sprint::make_noc_sprinting_network(params, level, "uniform", seed);
  FaultRig rig;
  rig.routing = std::move(bundle.routing);
  rig.net = std::move(bundle.network);
  rig.injector = std::make_unique<fault::FaultInjector>(params.shape(), fp);
  const noc::ProtectionParams prot = fp.protection();
  rig.net->enable_resilience(rig.injector.get(), &prot);
  return rig;
}

// --- injector determinism --------------------------------------------------

TEST(FaultInjector, IdenticalSeedsGiveIdenticalStreams) {
  const MeshShape mesh(4, 4);
  fault::FaultParams fp = storm_params();
  fp.wake_fail_prob = 0.5;
  fault::FaultInjector a(mesh, fp);
  fault::FaultInjector b(mesh, fp);
  for (Cycle t = 0; t < 2000; ++t) {
    EXPECT_EQ(a.corrupt_link_flit(0, 1, t), b.corrupt_link_flit(0, 1, t));
    EXPECT_EQ(a.link_down(5, 6, t), b.link_down(5, 6, t));
    EXPECT_EQ(a.drop_packet(3, t), b.drop_packet(3, t));
    EXPECT_EQ(a.wake_fails(2, 1, t), b.wake_fails(2, 1, t));
  }
}

TEST(FaultInjector, StreamsIndependentAcrossEntities) {
  // Querying extra entities on one injector must not perturb another
  // entity's stream (per-entity RNGs, the determinism contract).
  const MeshShape mesh(4, 4);
  const fault::FaultParams fp = storm_params();
  fault::FaultInjector a(mesh, fp);
  fault::FaultInjector b(mesh, fp);
  for (Cycle t = 0; t < 1000; ++t) {
    (void)a.drop_packet(2, t);       // extra traffic on node 2 in `a` only
    (void)a.corrupt_link_flit(8, 9, t);
    EXPECT_EQ(a.drop_packet(3, t), b.drop_packet(3, t));
    EXPECT_EQ(a.corrupt_link_flit(0, 1, t), b.corrupt_link_flit(0, 1, t));
  }
}

TEST(FaultInjector, LinkOutagesLastConfiguredDuration) {
  const MeshShape mesh(4, 4);
  fault::FaultParams fp;
  fp.enabled = true;
  fp.seed = 9;
  fp.link_down_rate = 0.01;
  fp.link_down_cycles = 25;
  fault::FaultInjector inj(mesh, fp);
  int down = 0;
  const Cycle horizon = 50000;
  for (Cycle t = 0; t < horizon; ++t) down += inj.link_down(1, 2, t) ? 1 : 0;
  EXPECT_GT(down, 0);
  EXPECT_EQ(down % fp.link_down_cycles, 0);  // whole intervals only
  EXPECT_LT(down, static_cast<int>(horizon));
}

TEST(FaultInjector, RejectsInvalidRates) {
  fault::FaultParams fp;
  fp.flip_rate = 1.5;
  EXPECT_DEATH(fp.validate(), "");
}

// --- end-to-end protection -------------------------------------------------

TEST(Resilience, FaultStormLosesNoMeasuredPacket) {
  FaultRig rig = make_rig(storm_params(), /*level=*/8, /*seed=*/1);
  noc::SimConfig sim;
  sim.warmup = 1000;
  sim.measure = 5000;
  sim.injection_rate = 0.1;
  sim.watchdog_cycles = 20000;
  const noc::SimResults r = run_simulation(*rig.net, sim);

  EXPECT_FALSE(r.hung) << r.diagnostic;
  EXPECT_FALSE(r.saturated);
  // Every measured packet was eventually delivered exactly once...
  EXPECT_EQ(r.packets_ejected, r.packets_generated);
  // ...and the faults genuinely exercised the recovery machinery.
  EXPECT_GT(r.resilience.retransmissions, 0u);
  EXPECT_GT(r.resilience.dropped_packets, 0u);
  EXPECT_GT(r.resilience.corrupted_packets, 0u);
  EXPECT_GT(r.resilience.acks_sent, 0u);
}

TEST(Resilience, FaultFreeRunWithProtectionStillDrains) {
  // Oracle attached but all rates zero: the ACK machinery runs (acks are
  // sent) yet nothing is ever retransmitted or lost.
  fault::FaultParams fp;
  fp.enabled = true;
  fp.seed = 3;
  FaultRig rig = make_rig(fp, /*level=*/4, /*seed=*/5);
  noc::SimConfig sim;
  sim.warmup = 500;
  sim.measure = 3000;
  sim.injection_rate = 0.08;
  const noc::SimResults r = run_simulation(*rig.net, sim);
  EXPECT_FALSE(r.saturated);
  EXPECT_EQ(r.packets_ejected, r.packets_generated);
  EXPECT_EQ(r.resilience.retransmissions, 0u);
  EXPECT_EQ(r.resilience.corrupted_packets, 0u);
  EXPECT_EQ(r.resilience.duplicates, 0u);
  EXPECT_GT(r.resilience.acks_sent, 0u);
}

TEST(Resilience, NullOracleIsBitIdenticalToSeedPath) {
  // The resilience hooks must not disturb the fault-free simulator: a
  // network with no oracle and no protection produces exactly the seed
  // results.
  noc::NetworkParams params;
  noc::SimConfig sim;
  sim.warmup = 500;
  sim.measure = 3000;
  sim.injection_rate = 0.1;

  auto plain = sprint::make_noc_sprinting_network(params, 8, "uniform", 7);
  const noc::SimResults a = run_simulation(*plain.network, sim);

  auto hooked = sprint::make_noc_sprinting_network(params, 8, "uniform", 7);
  hooked.network->enable_resilience(nullptr, nullptr);  // explicit no-op
  const noc::SimResults b = run_simulation(*hooked.network, sim);

  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.packets_ejected, b.packets_ejected);
  EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);  // bitwise
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.counters.buffer_writes, b.counters.buffer_writes);
  EXPECT_EQ(a.counters.flits_corrupted, 0u);
  EXPECT_EQ(b.resilience.retransmissions, 0u);
}

TEST(Resilience, SweepIsDeterministicAcrossThreadCounts) {
  const fault::FaultParams fp = storm_params();
  const noc::NetworkParams params;
  const std::vector<double> rates = {0.05, 0.1, 0.15};
  auto runner = [&](const noc::SweepTask& task) {
    auto bundle = sprint::make_noc_sprinting_network(params, 8, "uniform",
                                                     task.seed);
    auto injector =
        std::make_unique<fault::FaultInjector>(params.shape(), fp);
    const noc::ProtectionParams prot = fp.protection();
    bundle.network->enable_resilience(injector.get(), &prot);
    noc::SimConfig sim;
    sim.warmup = 500;
    sim.measure = 2500;
    sim.injection_rate = task.injection_rate;
    sim.watchdog_cycles = 20000;
    return run_simulation(*bundle.network, sim);
  };
  const auto serial = noc::parallel_sweep_injection(runner, rates, 11, 1);
  const auto parallel = noc::parallel_sweep_injection(runner, rates, 11, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].results.avg_packet_latency,
              parallel[i].results.avg_packet_latency);  // bitwise
    EXPECT_EQ(serial[i].results.packets_ejected,
              parallel[i].results.packets_ejected);
    EXPECT_EQ(serial[i].results.resilience.retransmissions,
              parallel[i].results.resilience.retransmissions);
    EXPECT_EQ(serial[i].results.counters.flits_corrupted,
              parallel[i].results.counters.flits_corrupted);
  }
}

// --- watchdog --------------------------------------------------------------

TEST(Watchdog, FiresOnStuckRouterWithDiagnostic) {
  // A fail-stop router wedges the wormhole path through it; the watchdog
  // must notice the lack of progress and name the wedged nodes.
  noc::NetworkParams params;
  noc::XyRouting routing;
  noc::Network net(params, &routing);
  fault::FaultParams fp;
  fp.enabled = true;
  fp.stuck = {5};
  fp.stuck_from = 0;
  fault::FaultInjector injector(params.shape(), fp);
  net.enable_resilience(&injector, nullptr);

  fault::Watchdog dog(net, /*no_progress_limit=*/500);
  // Node 4 -> node 6 routes east straight through stuck node 5 under XY.
  net.ni(4).send_packet(net.now(), 6);
  bool fired = false;
  for (int i = 0; i < 5000 && !fired; ++i) {
    net.tick();
    if (i % 16 == 0) fired = dog.poll();
  }
  ASSERT_TRUE(fired);
  EXPECT_FALSE(net.drained());
  EXPECT_NE(dog.diagnostic().find("node"), std::string::npos);
  EXPECT_NE(dog.diagnostic().find("buffered_flits"), std::string::npos);
}

TEST(Watchdog, StaysQuietOnHealthyTraffic) {
  noc::NetworkParams params;
  noc::XyRouting routing;
  noc::Network net(params, &routing);
  net.set_endpoints(params.shape().all_nodes(),
                    noc::make_traffic("uniform", params.num_nodes()));
  net.set_seed(1);
  net.set_injection_rate(0.1);
  fault::Watchdog dog(net, 200);
  for (int i = 0; i < 4000; ++i) {
    net.tick();
    if (i % 16 == 0) EXPECT_FALSE(dog.poll());
  }
  // An idle-but-drained network must not trip the watchdog either.
  net.set_injection_rate(0.0);
  for (int i = 0; i < 2000; ++i) net.tick();
  EXPECT_FALSE(dog.poll());
}

TEST(Watchdog, RunSimulationReportsHangOnStuckRouter) {
  // The simulator-integrated watchdog: a stuck router inside the sprint
  // region under sustained load eventually wedges enough VCs that all
  // forward progress stops, and run_simulation reports hung + diagnostic
  // instead of spinning until drain_max.
  fault::FaultParams fp;
  fp.enabled = true;
  fp.stuck_from = 400;
  const noc::NetworkParams params;
  const auto active = sprint::active_set(params.shape(), 4, 0);
  fp.stuck = {active[1]};  // a non-master node carrying region traffic
  // Level 4 on a 4x4 mesh is a 2x2 region: every flow crosses few links,
  // so the stuck node chokes the whole region quickly.
  FaultRig rig = make_rig(fp, /*level=*/4, /*seed=*/2);
  noc::SimConfig sim;
  sim.warmup = 1000;
  sim.measure = 4000;
  sim.injection_rate = 0.25;
  sim.drain_max = 50000;
  sim.watchdog_cycles = 3000;
  const noc::SimResults r = run_simulation(*rig.net, sim);
  EXPECT_TRUE(r.hung);
  EXPECT_NE(r.diagnostic.find("network diagnostic"), std::string::npos);
}

// --- CDOR fault-tolerant fallback ------------------------------------------

TEST(CdorReroute, DetourGoesNorthAndStaysInsideRegion) {
  const MeshShape mesh(4, 4);
  const auto active = sprint::active_set(mesh, 6, 0);
  const sprint::CdorRouting cdor(mesh, active, 0);
  // Node (0,1) -> (1,1): planned east.  With that link down the detour
  // must be the canonical-north hop into the wider row above.
  const Port planned = cdor.route(Coord{0, 1}, Coord{1, 1});
  EXPECT_EQ(planned, Port::kEast);
  const Port alt = cdor.reroute(Coord{0, 1}, Coord{1, 1}, Port::kEast);
  EXPECT_EQ(alt, Port::kNorth);
  EXPECT_TRUE(cdor.is_active(mesh.id_of(step(Coord{0, 1}, alt))));
}

TEST(CdorReroute, NoDetourOnMasterRowOrNonEastHops) {
  const MeshShape mesh(4, 4);
  const auto active = sprint::active_set(mesh, 6, 0);
  const sprint::CdorRouting cdor(mesh, active, 0);
  // Master row: no row above, keep the planned port.
  EXPECT_EQ(cdor.reroute(Coord{0, 0}, Coord{2, 0}, Port::kEast),
            Port::kEast);
  // Westward and Y-phase hops have no safe alternative.
  EXPECT_EQ(cdor.reroute(Coord{1, 1}, Coord{0, 1}, Port::kWest),
            Port::kWest);
  EXPECT_EQ(cdor.reroute(Coord{0, 1}, Coord{0, 0}, Port::kNorth),
            Port::kNorth);
}

TEST(CdorReroute, XyRoutingNeverDetours) {
  const noc::XyRouting xy;
  EXPECT_EQ(xy.reroute(Coord{0, 1}, Coord{2, 1}, Port::kEast), Port::kEast);
}

TEST(CdorReroute, LinkFaultsNeverLeakTrafficIntoDarkRegion) {
  fault::FaultParams fp;
  fp.enabled = true;
  fp.seed = 17;
  fp.link_down_rate = 0.002;
  fp.link_down_cycles = 40;
  FaultRig rig = make_rig(fp, /*level=*/6, /*seed=*/4);
  noc::SimConfig sim;
  sim.warmup = 500;
  sim.measure = 4000;
  sim.injection_rate = 0.12;
  sim.watchdog_cycles = 20000;
  const noc::SimResults r = run_simulation(*rig.net, sim);
  EXPECT_FALSE(r.hung) << r.diagnostic;
  EXPECT_EQ(r.packets_ejected, r.packets_generated);
  // Outages really happened (deterministic under the fixed seed)...
  EXPECT_GT(r.counters.flits_corrupted + r.counters.reroutes, 0u);
  // ...yet gated dark-region routers never saw a single flit.
  const auto active = sprint::active_set(noc::NetworkParams{}.shape(), 6, 0);
  const auto per_router = rig.net->per_router_counters();
  for (NodeId id = 0; id < rig.net->num_nodes(); ++id) {
    if (std::find(active.begin(), active.end(), id) != active.end())
      continue;
    EXPECT_EQ(per_router[static_cast<std::size_t>(id)].buffer_writes, 0u)
        << "dark node " << id;
  }
}

// --- power-gate wake failures ----------------------------------------------

TEST(Resilience, WakeFailuresRetryAndEventuallySucceed) {
  noc::NetworkParams params;
  noc::XyRouting routing;
  noc::Network net(params, &routing);
  net.set_dynamic_gating(true);
  fault::FaultParams fp;
  fp.enabled = true;
  fp.seed = 5;
  fp.wake_fail_prob = 1.0;  // every attempt fails...
  fp.wake_retry = 7;
  fp.wake_max_retries = 3;  // ...until attempt 4 is forced through
  fault::FaultInjector injector(params.shape(), fp);
  net.enable_resilience(&injector, nullptr);

  // Let every router gate, then push one packet through the gated path.
  net.run(params.gate_idle_threshold + 50);
  net.ni(0).send_packet(net.now(), 3);
  for (int i = 0; i < 4000 && net.ni(3).total_ejected_flits() == 0; ++i)
    net.tick();
  EXPECT_GT(net.ni(3).total_ejected_flits(), 0u);  // delivered despite faults
  const noc::RouterCounters total = net.total_counters();
  EXPECT_GT(total.wake_failures, 0u);
  // Each wake needed exactly wake_max_retries failed attempts.
  EXPECT_EQ(total.wake_failures % 3, 0u);
}

// --- graceful degradation --------------------------------------------------

TEST(Degradation, LargestHealthyPrefixStopsAtFirstFailure) {
  const MeshShape mesh(4, 4);
  const auto order = sprint::sprint_order(mesh, 0);
  for (int level = 1; level <= mesh.size(); ++level) {
    for (int k = 0; k < mesh.size(); ++k) {
      const auto healthy =
          sprint::largest_healthy_prefix(mesh, level, {order[k]}, 0);
      const std::size_t expect =
          static_cast<std::size_t>(std::min(level, k));
      ASSERT_EQ(healthy.size(), expect) << "level=" << level << " k=" << k;
      if (!healthy.empty()) {
        EXPECT_TRUE(sprint::is_convex_region(mesh, healthy));
        EXPECT_TRUE(sprint::is_staircase_region(mesh, healthy));
      }
    }
  }
}

TEST(Degradation, FailedMasterLeavesNoHealthyRegion) {
  const MeshShape mesh(4, 4);
  EXPECT_TRUE(sprint::largest_healthy_prefix(mesh, 8, {0}, 0).empty());
}

TEST(Degradation, HealthyNodesOutsidePrefixDoNotMatter) {
  const MeshShape mesh(4, 4);
  const auto order = sprint::sprint_order(mesh, 0);
  // A failure beyond the requested level changes nothing.
  const auto healthy =
      sprint::largest_healthy_prefix(mesh, 4, {order[10]}, 0);
  EXPECT_EQ(healthy, sprint::active_set(mesh, 4, 0));
}

TEST(Degradation, ControllerPlansAroundFailedNodes) {
  const MeshShape mesh(4, 4);
  const cmp::PerfModel perf(16);
  const power::ChipPowerModel chip{power::ChipPowerParams{}};
  const thermal::PcmModel pcm{thermal::PcmParams{}};
  const sprint::SprintController ctl(mesh, perf, chip, pcm);
  const auto suite = cmp::parsec_suite(16);
  const auto& w = cmp::find_workload(suite, "dedup");

  const auto healthy_plan = ctl.plan(w, sprint::SprintMode::kNocSprinting);
  ASSERT_GE(healthy_plan.level, 2);
  const NodeId failed = healthy_plan.active[1];
  const auto degraded =
      ctl.plan(w, sprint::SprintMode::kNocSprinting, {failed});
  EXPECT_LT(degraded.level, healthy_plan.level);
  EXPECT_EQ(degraded.level, static_cast<int>(degraded.active.size()));
  for (NodeId id : degraded.active) EXPECT_NE(id, failed);
  EXPECT_TRUE(sprint::is_convex_region(mesh, degraded.active));
  // A degraded sprint is slower but still a sprint.
  EXPECT_LE(degraded.speedup, healthy_plan.speedup);
  EXPECT_GE(degraded.speedup, 1.0);
}

TEST(Degradation, OnlineControllerRestrictsItsCeiling) {
  sprint::OnlineLevelController ctl(16, /*start_level=*/8);
  ctl.restrict_max(4);
  EXPECT_EQ(ctl.n_max(), 4);
  EXPECT_LE(ctl.next_level(), 4);
  // The controller keeps working below the new ceiling: feed it a speedup
  // curve favoring level 4 and it must converge there.
  for (int burst = 0; burst < 64 && !ctl.converged(); ++burst) {
    const int level = ctl.next_level();
    ASSERT_GE(level, 1);
    ASSERT_LE(level, 4);
    ctl.observe(1.0 / level);  // monotone: higher level, faster
  }
  EXPECT_TRUE(ctl.converged());
  EXPECT_EQ(ctl.next_level(), 4);
  // Raising the ceiling is not possible through restrict_max.
  ctl.restrict_max(12);
  EXPECT_EQ(ctl.n_max(), 4);
}

}  // namespace
}  // namespace nocs
