// Tests for the warmup/measure/drain simulation driver.
#include <gtest/gtest.h>

#include "noc/simulator.hpp"

namespace nocs::noc {
namespace {

struct NetFixture {
  NetFixture() : net(params(), &xy) {
    net.set_endpoints(net.params().shape().all_nodes(),
                      make_traffic("uniform", 16));
    net.set_seed(77);
  }
  static NetworkParams params() {
    NetworkParams p;
    p.width = 4;
    p.height = 4;
    return p;
  }
  XyRouting xy;
  Network net;
};

TEST(Simulator, DrainsAndReportsAtModerateLoad) {
  NetFixture f;
  SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 3000;
  cfg.injection_rate = 0.1;
  const SimResults r = run_simulation(f.net, cfg);
  EXPECT_FALSE(r.saturated);
  EXPECT_GT(r.packets_generated, 0u);
  EXPECT_EQ(r.packets_ejected, r.packets_generated);
  EXPECT_GT(r.avg_packet_latency, 0.0);
  EXPECT_GE(r.avg_packet_latency, r.avg_network_latency);
  EXPECT_GT(r.avg_hops, 0.0);
  EXPECT_GE(r.cycles, cfg.warmup + cfg.measure);
}

TEST(Simulator, AcceptedTracksOfferedBelowSaturation) {
  NetFixture f;
  SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 5000;
  for (double rate : {0.05, 0.15, 0.3}) {
    cfg.injection_rate = rate;
    const SimResults r = run_simulation(f.net, cfg);
    EXPECT_NEAR(r.accepted_rate, rate, 0.25 * rate) << "rate " << rate;
  }
}

TEST(Simulator, AcceptedRateNormalizesByMeasureWindowOnly) {
  // Regression: accepted_rate used to divide by measure + drain cycles,
  // understating throughput whenever draining took a while.  Only flits
  // generated inside the measurement window are tagged, so the correct
  // base is the window length times the active-endpoint count — exactly.
  NetFixture f;
  SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 4000;
  cfg.injection_rate = 0.3;  // busy enough that the drain tail is nonzero
  const SimResults r = run_simulation(f.net, cfg);
  ASSERT_FALSE(r.saturated);
  EXPECT_GT(r.cycles, cfg.warmup + cfg.measure) << "load too low to drain";
  const double expected =
      static_cast<double>(f.net.stats().ejected_flits()) /
      (static_cast<double>(cfg.measure) *
       static_cast<double>(f.net.endpoints().size()));
  EXPECT_EQ(r.accepted_rate, expected);
}

TEST(Simulator, LatencyMonotonicInLoad) {
  NetFixture f;
  SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 4000;
  double prev = 0.0;
  for (double rate : {0.05, 0.2, 0.4, 0.55}) {
    cfg.injection_rate = rate;
    const SimResults r = run_simulation(f.net, cfg);
    EXPECT_GT(r.avg_packet_latency, prev) << "rate " << rate;
    prev = r.avg_packet_latency;
  }
}

TEST(Simulator, SaturatesAtAbsurdLoad) {
  NetFixture f;
  SimConfig cfg;
  cfg.warmup = 200;
  cfg.measure = 3000;
  cfg.drain_max = 2000;  // tight drain budget
  cfg.injection_rate = 0.95;
  const SimResults r = run_simulation(f.net, cfg);
  EXPECT_TRUE(r.saturated);
  EXPECT_LT(r.packets_ejected, r.packets_generated);
}

TEST(Simulator, ZeroLoadHasZeroLoadLatency) {
  // At a vanishing injection rate, latency approaches the no-contention
  // pipeline bound: ~6 cycles per hop plus serialization.
  NetFixture f;
  SimConfig cfg;
  cfg.warmup = 1000;
  cfg.measure = 30000;
  cfg.injection_rate = 0.005;
  const SimResults r = run_simulation(f.net, cfg);
  ASSERT_FALSE(r.saturated);
  // 4x4 uniform average hop distance ~2.67; each hop costs 6 cycles
  // (5-stage + link); +NI injection/ejection and 4 cycles tail
  // serialization: roughly 24-27 cycles.
  EXPECT_GT(r.avg_packet_latency, 15.0);
  EXPECT_LT(r.avg_packet_latency, 32.0);
}

TEST(Simulator, LatencyPercentilesBracketTheMean) {
  NetFixture f;
  SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 6000;
  cfg.injection_rate = 0.2;
  const SimResults r = run_simulation(f.net, cfg);
  ASSERT_FALSE(r.saturated);
  EXPECT_GT(r.p50_latency, 0.0);
  EXPECT_GE(r.p99_latency, r.p50_latency);
  // Histogram quantiles are bin-edge estimates: allow one bin of slack.
  EXPECT_LE(r.p50_latency, r.avg_packet_latency + 4.0);
  EXPECT_GT(r.p99_latency, r.avg_packet_latency);
}

TEST(Simulator, TailLatencyGrowsFasterThanMedianNearSaturation) {
  NetFixture f;
  SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 6000;
  cfg.injection_rate = 0.05;
  const SimResults low = run_simulation(f.net, cfg);
  cfg.injection_rate = 0.5;
  const SimResults high = run_simulation(f.net, cfg);
  ASSERT_FALSE(high.saturated);
  EXPECT_GT(high.p99_latency - high.p50_latency,
            low.p99_latency - low.p50_latency);
}

TEST(Simulator, CountersResetPerRun) {
  NetFixture f;
  SimConfig cfg;
  cfg.warmup = 100;
  cfg.measure = 500;
  cfg.injection_rate = 0.1;
  const SimResults a = run_simulation(f.net, cfg);
  const SimResults b = run_simulation(f.net, cfg);
  // Same order of magnitude — counters did not accumulate across runs.
  EXPECT_LT(static_cast<double>(b.counters.buffer_writes),
            2.0 * static_cast<double>(a.counters.buffer_writes) + 100.0);
}

TEST(Sweep, ProducesOnePointPerRate) {
  NetFixture f;
  SimConfig cfg;
  cfg.warmup = 200;
  cfg.measure = 1000;
  const std::vector<double> rates = {0.05, 0.1, 0.2};
  const auto points = sweep_injection(f.net, cfg, rates);
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 0; i < rates.size(); ++i)
    EXPECT_EQ(points[i].injection_rate, rates[i]);
}

TEST(Sweep, StopAtSaturationSkipsTail) {
  NetFixture f;
  SimConfig cfg;
  cfg.warmup = 200;
  cfg.measure = 3000;
  cfg.drain_max = 1000;
  const std::vector<double> rates = {1.5, 2.0};
  const auto points = sweep_injection(f.net, cfg, rates,
                                      /*stop_at_saturation=*/true);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_TRUE(points[0].results.saturated);
  // Second point short-circuited: marked saturated without running.
  EXPECT_TRUE(points[1].results.saturated);
  EXPECT_EQ(points[1].results.packets_generated, 0u);
}

}  // namespace
}  // namespace nocs::noc
