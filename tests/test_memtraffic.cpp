// Memory-traffic subsystem tests: edge DRAM controller ground truth,
// multicast vs unicast-fallback delivery equivalence, tile-transfer
// driver progress, checkpoint/restore mid-transfer, and serial-vs-
// sharded bit-identity (ctest label "mem").
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/snapshot.hpp"
#include "mem/mem_params.hpp"
#include "mem/mem_subsystem.hpp"
#include "mem/tile_driver.hpp"
#include "mem/tile_schedule.hpp"
#include "mem/tile_traffic.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "sprint/topology.hpp"

namespace nocs {
namespace {

noc::NetworkParams mesh44() {
  noc::NetworkParams p;
  p.width = 4;
  p.height = 4;
  p.num_classes = 2;
  return p;
}

void run_until_drained(noc::Network& net, int limit = 100000) {
  for (int i = 0; i < limit && !net.drained(); ++i) net.tick();
  ASSERT_TRUE(net.drained());
}

// --- placement --------------------------------------------------------------

TEST(MemPlacement, ControllerSitesAreDistinctBoundaryNodes) {
  const MeshShape shape(4, 4);
  for (auto placement : {mem::MemPlacement::kInterleave,
                         mem::MemPlacement::kNearest,
                         mem::MemPlacement::kEdges}) {
    for (int n : {1, 2, 4, 8, 12}) {
      const auto sites = mem::controller_sites(shape, n, placement);
      ASSERT_EQ(sites.size(), static_cast<std::size_t>(n));
      std::vector<bool> seen(16, false);
      for (NodeId s : sites) {
        ASSERT_TRUE(shape.valid(s));
        const Coord c = shape.coord_of(s);
        EXPECT_TRUE(c.x == 0 || c.x == 3 || c.y == 0 || c.y == 3)
            << "site " << s << " not on the boundary";
        EXPECT_FALSE(seen[static_cast<std::size_t>(s)]);
        seen[static_cast<std::size_t>(s)] = true;
      }
    }
  }
}

TEST(MemPlacement, XyPathMatchesManhattanDistance) {
  const MeshShape shape(4, 4);
  for (NodeId a = 0; a < 16; ++a)
    for (NodeId b = 0; b < 16; ++b) {
      const auto path = mem::xy_path_nodes(shape, a, b);
      ASSERT_GE(path.size(), 1u);
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      EXPECT_EQ(static_cast<int>(path.size()),
                manhattan(shape.coord_of(a), shape.coord_of(b)) + 1);
    }
}

TEST(MemPlacement, NearestMappingPicksMinimumHopSite) {
  const noc::NetworkParams p = mesh44();
  noc::XyRouting xy;
  noc::Network net(p, &xy);
  mem::MemParams mp;
  mp.ctrls = 4;
  mp.placement = mem::MemPlacement::kNearest;
  mem::MemSubsystem mem_sys(net, mp);
  const MeshShape shape(4, 4);
  for (NodeId tile = 0; tile < 16; ++tile) {
    const NodeId chosen = mem_sys.controller_for(tile, 0);
    const int d = manhattan(shape.coord_of(tile), shape.coord_of(chosen));
    for (NodeId site : mem_sys.sites())
      EXPECT_LE(d, manhattan(shape.coord_of(tile), shape.coord_of(site)));
    // The sequence number must not matter under nearest placement.
    EXPECT_EQ(chosen, mem_sys.controller_for(tile, 17));
  }
}

// --- controller ground truth ------------------------------------------------

TEST(MemController, ReadServiceTimeMatchesLatencyPlusBandwidth) {
  const noc::NetworkParams p = mesh44();
  noc::XyRouting xy;
  noc::Network net(p, &xy);
  mem::MemParams mp;
  mp.ctrls = 1;
  mp.placement = mem::MemPlacement::kEdges;  // controller at node 0
  mp.bandwidth = 2;
  mp.access_latency = 60;
  mp.reply_length = 8;
  mem::MemSubsystem mem_sys(net, mp);
  ASSERT_EQ(mem_sys.sites().front(), 0);

  // One read command from the far corner.
  net.ni(15).send_packet(net.now(), 0, mem::kMemRequestClass, 1);
  run_until_drained(net);

  const mem::MemCounters c = mem_sys.total_counters();
  EXPECT_EQ(c.reads, 1u);
  EXPECT_EQ(c.writes, 0u);
  EXPECT_EQ(c.read_flits, 8u);
  EXPECT_EQ(c.replies, 1u);
  // Ground truth: the DRAM channel is busy exactly access_latency +
  // ceil(reply_length / bandwidth) cycles.
  EXPECT_EQ(c.busy_cycles, 60u + 4u);
  // The requester got the 8-flit data reply.
  EXPECT_EQ(net.ni(15).total_ejected_flits(), 8u);
}

TEST(MemController, WriteAbsorbsBurstAndAcksOneFlit) {
  const noc::NetworkParams p = mesh44();
  noc::XyRouting xy;
  noc::Network net(p, &xy);
  mem::MemParams mp;
  mp.ctrls = 1;
  mp.placement = mem::MemPlacement::kEdges;
  mp.bandwidth = 4;
  mp.access_latency = 10;
  mem::MemSubsystem mem_sys(net, mp);

  net.ni(5).send_packet(net.now(), 0, mem::kMemRequestClass, 12);
  run_until_drained(net);

  const mem::MemCounters c = mem_sys.total_counters();
  EXPECT_EQ(c.writes, 1u);
  EXPECT_EQ(c.write_flits, 12u);
  EXPECT_EQ(c.busy_cycles, 10u + 3u);
  // Write ack is a single flit.
  EXPECT_EQ(net.ni(5).total_ejected_flits(), 1u);
}

TEST(MemController, SerializesRequestsAndTracksOccupancy) {
  const noc::NetworkParams p = mesh44();
  noc::XyRouting xy;
  noc::Network net(p, &xy);
  mem::MemParams mp;
  mp.ctrls = 1;
  mp.placement = mem::MemPlacement::kEdges;
  mp.bandwidth = 1;
  mp.access_latency = 20;
  mp.reply_length = 5;
  mem::MemSubsystem mem_sys(net, mp);

  const int kRequests = 6;
  for (int i = 0; i < kRequests; ++i)
    net.ni(15).send_packet(net.now(), 0, mem::kMemRequestClass, 1);
  run_until_drained(net);

  const mem::MemCounters c = mem_sys.total_counters();
  EXPECT_EQ(c.reads, static_cast<std::uint64_t>(kRequests));
  // One channel serializes: total busy time is the sum of services.
  EXPECT_EQ(c.busy_cycles, static_cast<std::uint64_t>(kRequests) * (20 + 5));
  EXPECT_GE(c.queue_peak, 2u);  // the burst had to queue
  EXPECT_EQ(net.ni(15).total_ejected_flits(),
            static_cast<std::uint64_t>(kRequests) * 5);
}

TEST(MemController, BoundedQueueRejectsOverflow) {
  const noc::NetworkParams p = mesh44();
  noc::XyRouting xy;
  noc::Network net(p, &xy);
  mem::MemParams mp;
  mp.ctrls = 1;
  mp.placement = mem::MemPlacement::kEdges;
  mp.access_latency = 100;
  mp.queue_capacity = 2;
  mem::MemSubsystem mem_sys(net, mp);

  for (int i = 0; i < 8; ++i)
    net.ni(15).send_packet(net.now(), 0, mem::kMemRequestClass, 1);
  run_until_drained(net);

  const mem::MemCounters c = mem_sys.total_counters();
  EXPECT_GT(c.rejected, 0u);
  EXPECT_EQ(c.reads + c.rejected, 8u);
  EXPECT_LE(c.queue_peak, 2u);
}

// --- multicast --------------------------------------------------------------

// Runs one multicast of `length` flits from `src` over `members` and
// returns per-node ejected flit counts.
std::vector<std::uint64_t> run_multicast(bool tree, NodeId src,
                                         std::vector<NodeId> members,
                                         int length,
                                         std::uint64_t* replications) {
  const noc::NetworkParams p = mesh44();
  noc::XyRouting xy;
  noc::Network net(p, &xy);
  const int group = net.add_multicast_group(members);
  net.set_multicast(tree);
  net.ni(src).send_multicast(net.now(), group, 0, length);
  for (int i = 0; i < 100000 && !net.drained(); ++i) net.tick();
  EXPECT_TRUE(net.drained());
  std::vector<std::uint64_t> ejected;
  std::uint64_t repl = 0;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    ejected.push_back(net.ni(id).total_ejected_flits());
    repl += net.router(id).counters().mc_replications;
  }
  if (replications != nullptr) *replications = repl;
  return ejected;
}

TEST(Multicast, TreeDeliversOneCopyPerMember) {
  const std::vector<NodeId> members = {1, 3, 6, 9, 12, 15};
  std::uint64_t repl = 0;
  const auto ejected = run_multicast(true, 1, members, 7, &repl);
  for (NodeId id = 0; id < 16; ++id) {
    const bool member =
        std::find(members.begin(), members.end(), id) != members.end();
    const std::uint64_t expect = (member && id != 1) ? 7u : 0u;
    EXPECT_EQ(ejected[static_cast<std::size_t>(id)], expect)
        << "node " << id;
  }
  // A 6-member tree forwards through relays.
  EXPECT_GT(repl, 0u);
}

TEST(Multicast, UnicastFallbackDeliversIdenticalSet) {
  const std::vector<NodeId> members = {1, 3, 6, 9, 12, 15};
  std::uint64_t repl_tree = 0, repl_flat = 0;
  const auto tree = run_multicast(true, 1, members, 7, &repl_tree);
  const auto flat = run_multicast(false, 1, members, 7, &repl_flat);
  EXPECT_EQ(tree, flat);
  EXPECT_GT(repl_tree, 0u);
  EXPECT_EQ(repl_flat, 0u);  // no relaying without the tree
}

TEST(Multicast, SourceOutsideGroupReachesEveryMember) {
  const std::vector<NodeId> members = {2, 7, 8, 13};
  const auto ejected = run_multicast(true, 0, members, 5, nullptr);
  for (NodeId m : members)
    EXPECT_EQ(ejected[static_cast<std::size_t>(m)], 5u);
  EXPECT_EQ(ejected[0], 0u);
}

TEST(Multicast, ReplicationIsChargedToPower) {
  // mc_flits feed the power attribution; the tree run must record them.
  const noc::NetworkParams p = mesh44();
  noc::XyRouting xy;
  noc::Network net(p, &xy);
  const int group = net.add_multicast_group({0, 3, 12, 15});
  net.set_multicast(true);
  net.ni(0).send_multicast(net.now(), group, 0, 4);
  for (int i = 0; i < 100000 && !net.drained(); ++i) net.tick();
  ASSERT_TRUE(net.drained());
  std::uint64_t mc_flits = 0;
  for (NodeId id = 0; id < net.num_nodes(); ++id)
    mc_flits += net.router(id).counters().mc_flits;
  EXPECT_GT(mc_flits, 0u);
}

// --- tile-transfer driver ---------------------------------------------------

struct DriverRun {
  Cycle cycles = 0;
  mem::MemCounters mem;
  mem::TileDriverCounters driver;
};

DriverRun run_driver(int sim_threads, bool multicast,
                     const std::string& schedule = "f96,w64,c400,a48/"
                                                   "f64,w32,c400,a48,b96") {
  const noc::NetworkParams p = mesh44();
  noc::XyRouting xy;
  noc::Network net(p, &xy);
  if (sim_threads > 1) net.set_sim_threads(sim_threads);
  mem::MemParams mp;
  mp.ctrls = 2;
  mem::MemSubsystem mem_sys(net, mp);
  const auto active = sprint::active_set(MeshShape(4, 4), 8);
  std::vector<std::vector<NodeId>> groups = {
      {active[0], active[1], active[2], active[3]},
      {active[4], active[5], active[6], active[7]}};
  mem::TileTransferDriver driver(
      net, mem_sys, mem::TileSchedule::parse(schedule), groups,
      {.multicast = multicast, .chunk_flits = 0});
  driver.install();
  for (int i = 0; i < 500000 && !driver.done(); ++i) net.tick();
  EXPECT_TRUE(driver.done());
  driver.uninstall();
  DriverRun r;
  r.cycles = driver.finished_at();
  r.mem = mem_sys.total_counters();
  r.driver = driver.counters();
  return r;
}

void expect_same(const DriverRun& a, const DriverRun& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.mem.reads, b.mem.reads);
  EXPECT_EQ(a.mem.writes, b.mem.writes);
  EXPECT_EQ(a.mem.read_flits, b.mem.read_flits);
  EXPECT_EQ(a.mem.write_flits, b.mem.write_flits);
  EXPECT_EQ(a.mem.busy_cycles, b.mem.busy_cycles);
  EXPECT_EQ(a.mem.queue_cycles, b.mem.queue_cycles);
  EXPECT_EQ(a.mem.queue_peak, b.mem.queue_peak);
  EXPECT_EQ(a.driver.dram_reads, b.driver.dram_reads);
  EXPECT_EQ(a.driver.dram_writes, b.driver.dram_writes);
  EXPECT_EQ(a.driver.weight_mcasts, b.driver.weight_mcasts);
  EXPECT_EQ(a.driver.act_packets, b.driver.act_packets);
}

TEST(TileDriver, CompletesAllLayersAndTouchesDram) {
  const DriverRun r = run_driver(1, true);
  EXPECT_EQ(r.driver.layers_done, 2u);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.driver.dram_reads, 0u);
  EXPECT_GT(r.driver.dram_writes, 0u);
  EXPECT_GT(r.driver.weight_mcasts, 0u);
  EXPECT_GT(r.driver.act_packets, 0u);
  EXPECT_EQ(r.mem.reads, r.driver.dram_reads);
  EXPECT_EQ(r.mem.writes, r.driver.dram_writes);
  EXPECT_EQ(r.mem.rejected, 0u);
}

TEST(TileDriver, SerialAndShardedTicksAreBitIdentical) {
  expect_same(run_driver(1, true), run_driver(4, true));
}

TEST(TileDriver, UnicastFallbackAlsoBitIdenticalAcrossThreads) {
  expect_same(run_driver(1, false), run_driver(4, false));
}

TEST(TileDriver, MulticastOffMovesSameDramVolume) {
  const DriverRun on = run_driver(1, true);
  const DriverRun off = run_driver(1, false);
  // Weight transport differs (tree vs serial unicast) but the DRAM side
  // of the workload is identical.
  EXPECT_EQ(on.mem.reads, off.mem.reads);
  EXPECT_EQ(on.mem.writes, off.mem.writes);
  EXPECT_EQ(on.mem.read_flits, off.mem.read_flits);
  EXPECT_EQ(on.mem.write_flits, off.mem.write_flits);
}

// --- checkpoint/restore -----------------------------------------------------

TEST(TileDriver, CheckpointRestoreMidTransferIsBitIdentical) {
  const noc::NetworkParams p = mesh44();
  noc::XyRouting xy;
  mem::MemParams mp;
  mp.ctrls = 2;
  const mem::TileSchedule sched =
      mem::TileSchedule::parse("f96,w64,c400,a48/f64,w32,c400,a48,b96");
  const std::vector<std::vector<NodeId>> groups = {{0, 1, 4, 5},
                                                   {2, 3, 6, 7}};

  // Reference run straight through.
  noc::Network ref_net(p, &xy);
  mem::MemSubsystem ref_mem(ref_net, mp);
  mem::TileTransferDriver ref_driver(ref_net, ref_mem, sched, groups, {});
  ref_driver.install();
  for (int i = 0; i < 500000 && !ref_driver.done(); ++i) ref_net.tick();
  ASSERT_TRUE(ref_driver.done());

  // Checkpointed run: stop mid-transfer (while DRAM queues are hot),
  // snapshot network + controllers + driver, restore into fresh objects,
  // finish there.
  noc::Network net_a(p, &xy);
  mem::MemSubsystem mem_a(net_a, mp);
  mem::TileTransferDriver driver_a(net_a, mem_a, sched, groups, {});
  driver_a.install();
  const Cycle cut = 300;
  while (net_a.now() < cut) net_a.tick();
  ASSERT_FALSE(driver_a.done());
  snapshot::Writer w;
  net_a.save_state(w);
  mem_a.save_state(w);
  driver_a.save_state(w);

  noc::Network net_b(p, &xy);
  mem::MemSubsystem mem_b(net_b, mp);
  mem::TileTransferDriver driver_b(net_b, mem_b, sched, groups, {});
  snapshot::Reader r(w.bytes());
  net_b.load_state(r);
  mem_b.load_state(r);
  driver_b.load_state(r);
  driver_b.install();
  for (int i = 0; i < 500000 && !driver_b.done(); ++i) net_b.tick();
  ASSERT_TRUE(driver_b.done());

  EXPECT_EQ(driver_b.finished_at(), ref_driver.finished_at());
  const mem::MemCounters ca = ref_mem.total_counters();
  const mem::MemCounters cb = mem_b.total_counters();
  EXPECT_EQ(ca.reads, cb.reads);
  EXPECT_EQ(ca.writes, cb.writes);
  EXPECT_EQ(ca.busy_cycles, cb.busy_cycles);
  EXPECT_EQ(ca.queue_cycles, cb.queue_cycles);
  EXPECT_EQ(ref_driver.counters().dram_reads, driver_b.counters().dram_reads);
  EXPECT_EQ(ref_driver.counters().act_packets,
            driver_b.counters().act_packets);
}

// --- schedule + pattern -----------------------------------------------------

TEST(TileSchedule, ParseRoundTripsAndRejectsJunk) {
  const mem::TileSchedule s =
      mem::TileSchedule::parse("f10,w20,c30,a40,b50/a7");
  ASSERT_EQ(s.layers.size(), 2u);
  EXPECT_EQ(s.layers[0].fetch_flits, 10);
  EXPECT_EQ(s.layers[0].weight_flits, 20);
  EXPECT_EQ(s.layers[0].compute_cycles, 30);
  EXPECT_EQ(s.layers[0].act_flits, 40);
  EXPECT_EQ(s.layers[0].writeback_flits, 50);
  EXPECT_EQ(s.layers[1].act_flits, 7);
  EXPECT_EQ(s.layers[1].fetch_flits, 0);
  EXPECT_EQ(mem::TileSchedule::parse(s.to_string()).to_string(),
            s.to_string());
  EXPECT_THROW(mem::TileSchedule::parse("x5"), std::invalid_argument);
  EXPECT_THROW(mem::TileSchedule::parse("w"), std::invalid_argument);
  EXPECT_THROW(mem::TileSchedule::parse("w5x"), std::invalid_argument);
  EXPECT_THROW(mem::TileSchedule::parse(""), std::invalid_argument);
  EXPECT_THROW(mem::TileSchedule::parse("f0,w0"), std::invalid_argument);
}

TEST(TileTraffic, NeverSelfSendsAndStaysInRange) {
  Rng rng(99);
  for (int k : {2, 3, 5, 8, 13, 16}) {
    for (int groups : {1, 2, 3, 4}) {
      if (groups > k) continue;
      mem::TileTraffic t(k, groups, 0.3);
      for (int src = 0; src < k; ++src)
        for (int draw = 0; draw < 200; ++draw) {
          const int d = t.dest(src, rng);
          ASSERT_GE(d, 0);
          ASSERT_LT(d, k);
          ASSERT_NE(d, src);
        }
    }
  }
}

TEST(TileTraffic, GroupPartitionIsContiguousAndCoversAll) {
  mem::TileTraffic t(10, 3);
  // Sizes 4,3,3: leaders at 0, 4, 7.
  EXPECT_EQ(t.leader_of(0), 0);
  EXPECT_EQ(t.leader_of(1), 4);
  EXPECT_EQ(t.leader_of(2), 7);
  int prev = -1;
  for (int e = 0; e < 10; ++e) {
    const int g = t.group_of(e);
    EXPECT_GE(g, prev);  // non-decreasing: contiguous blocks
    prev = g;
  }
  EXPECT_EQ(t.group_of(9), 2);
}

}  // namespace
}  // namespace nocs
