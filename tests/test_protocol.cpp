// Tests for message classes (virtual networks) and the request-reply
// protocol: VC partitioning, reply generation, and protocol-deadlock
// freedom under load.
#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "noc/simulator.hpp"
#include "sprint/cdor.hpp"
#include "sprint/topology.hpp"

namespace nocs::noc {
namespace {

NetworkParams protocol_params() {
  NetworkParams p;
  p.num_classes = 2;  // 4 VCs -> 2 per class
  return p;
}

TEST(MessageClasses, ParamsHelpers) {
  const NetworkParams p = protocol_params();
  EXPECT_EQ(p.vcs_per_class(), 2);
  EXPECT_EQ(p.class_of_vc(0), 0);
  EXPECT_EQ(p.class_of_vc(1), 0);
  EXPECT_EQ(p.class_of_vc(2), 1);
  EXPECT_EQ(p.class_of_vc(3), 1);
  EXPECT_EQ(p.first_vc_of(0), 0);
  EXPECT_EQ(p.first_vc_of(1), 2);
}

TEST(MessageClasses, IndivisiblePartitionRejected) {
  NetworkParams p;
  p.num_vcs = 4;
  p.num_classes = 3;
  EXPECT_DEATH(p.validate(), "precondition");
}

TEST(RequestReply, SingleRoundTrip) {
  const NetworkParams p = protocol_params();
  XyRouting xy;
  Network net(p, &xy);
  net.set_request_reply(/*request_length=*/1, /*reply_length=*/5);
  net.ni(0).send_packet(net.now(), 15, /*msg_class=*/0, /*length=*/1);
  for (int i = 0; i < 300 && !net.drained(); ++i) net.tick();
  EXPECT_TRUE(net.drained());
  // Node 15 ejected the 1-flit request; node 0 ejected the 5-flit reply.
  EXPECT_EQ(net.ni(15).total_ejected_flits(), 1u);
  EXPECT_EQ(net.ni(0).total_ejected_flits(), 5u);
  // The reply is a second generated packet (at node 15).
  EXPECT_EQ(net.ni(15).total_generated(), 1u);
}

TEST(RequestReply, EveryRequestGetsExactlyOneReply) {
  const NetworkParams p = protocol_params();
  XyRouting xy;
  Network net(p, &xy);
  net.set_request_reply(1, 5);
  net.set_endpoints(net.params().shape().all_nodes(),
                    make_traffic("uniform", 16));
  net.set_injection_rate(0.1);
  net.set_seed(31);
  net.run(4000);
  net.set_injection_rate(0.0);
  for (int i = 0; i < 50000 && !net.drained(); ++i) net.tick();
  ASSERT_TRUE(net.drained());
  // Every node's ejected flits = requests_to_it * 1 + replies_to_it * 5;
  // globally: total flits = requests + 5 * requests (each request begets
  // one reply).
  std::uint64_t total_generated = 0, total_flits = 0;
  for (NodeId id = 0; id < 16; ++id) {
    total_generated += net.ni(id).total_generated();
    total_flits += net.ni(id).total_ejected_flits();
  }
  // generated = requests + replies = 2 * requests.
  EXPECT_EQ(total_generated % 2, 0u);
  const std::uint64_t requests = total_generated / 2;
  EXPECT_EQ(total_flits, requests * 1 + requests * 5);
}

TEST(RequestReply, RequiresTwoClasses) {
  NetworkParams p;  // num_classes == 1
  XyRouting xy;
  Network net(p, &xy);
  EXPECT_DEATH(net.set_request_reply(1, 5), "precondition");
}

TEST(MessageClasses, WrongClassVcArrivalDies) {
  // A head flit claiming class 1 but arriving on a class-0 VC violates
  // the partition discipline and must abort.
  const NetworkParams p = protocol_params();
  XyRouting xy;
  Network net(p, &xy);
  Flit f;
  f.is_head = true;
  f.is_tail = true;
  f.src = 0;
  f.dst = 15;
  f.vc = 0;          // class 0 VC...
  f.msg_class = 1;   // ...carrying a class 1 packet
  // Inject through node 5's NI pipe is not accessible; use send_packet on
  // a hand-built network instead: craft via the router's local input by
  // sending with a mismatched class through the NI (the NI would not do
  // this, so drive the router directly).
  Pipe<Flit> pipe(1);
  Router r(5, p, &xy);
  Pipe<Credit> credit(1);
  r.connect_input(Port::kWest, &pipe, &credit);
  pipe.push(0, f);
  r.tick(0);
  EXPECT_DEATH(r.tick(1), "precondition");
}

TEST(RequestReply, NoProtocolDeadlockUnderLoad) {
  // Sustained bidirectional request/reply pressure with tiny buffers —
  // exactly the scenario that deadlocks without VC partitioning.
  NetworkParams p = protocol_params();
  p.vc_depth = 2;
  XyRouting xy;
  Network net(p, &xy);
  net.set_request_reply(1, 5);
  net.set_endpoints(net.params().shape().all_nodes(),
                    make_traffic("uniform", 16));
  net.set_injection_rate(0.2);
  net.set_seed(77);
  net.run(8000);
  net.set_injection_rate(0.0);
  bool drained = false;
  for (int i = 0; i < 100000; ++i) {
    net.tick();
    if (net.drained()) {
      drained = true;
      break;
    }
  }
  EXPECT_TRUE(drained) << "protocol deadlock or livelock";
}

TEST(RequestReply, WorksOnSprintRegionWithCdor) {
  NetworkParams p = protocol_params();
  const auto active = sprint::active_set(p.shape(), 6, 0);
  sprint::CdorRouting cdor(p.shape(), active, 0);
  Network net(p, &cdor);
  net.set_endpoints(active, make_traffic("cache", 6));
  net.set_request_reply(1, 5);
  net.gate_dark_region(active);
  net.set_seed(13);
  SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 4000;
  cfg.injection_rate = 0.1;
  const SimResults r = run_simulation(net, cfg);
  EXPECT_FALSE(r.saturated);
  EXPECT_GT(r.packets_ejected, 0u);
  // CDOR still never wakes the dark region, even with replies flowing.
  EXPECT_EQ(net.total_counters().wake_events, 0u);
}

TEST(RequestReply, RepliesLoadTheResponseClass) {
  // With protocol traffic the network carries more flits than the offered
  // request load alone: each 1-flit request begets a 5-flit reply.
  const NetworkParams p = protocol_params();
  XyRouting xy;
  Network net(p, &xy);
  net.set_request_reply(1, 5);
  net.set_endpoints(net.params().shape().all_nodes(),
                    make_traffic("uniform", 16));
  net.set_seed(3);
  SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 4000;
  cfg.injection_rate = 0.05;
  const SimResults r = run_simulation(net, cfg);
  ASSERT_FALSE(r.saturated);
  // Accepted throughput ~ 6x the offered request-flit rate.
  EXPECT_GT(r.accepted_rate, 3.0 * cfg.injection_rate);
}

}  // namespace
}  // namespace nocs::noc
