// Tests for the key=value configuration store.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/config.hpp"

namespace nocs {
namespace {

TEST(Config, DefaultsWhenAbsent) {
  Config c;
  EXPECT_FALSE(c.has("x"));
  EXPECT_EQ(c.get_string("x", "d"), "d");
  EXPECT_EQ(c.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double("x", 1.5), 1.5);
  EXPECT_TRUE(c.get_bool("x", true));
}

TEST(Config, SetAndGet) {
  Config c;
  c.set("name", "dedup");
  c.set_int("level", 4);
  c.set_double("rate", 0.25);
  c.set_bool("gate", true);
  EXPECT_EQ(c.get_string("name", ""), "dedup");
  EXPECT_EQ(c.get_int("level", 0), 4);
  EXPECT_DOUBLE_EQ(c.get_double("rate", 0.0), 0.25);
  EXPECT_TRUE(c.get_bool("gate", false));
}

TEST(Config, FromArgs) {
  const char* argv[] = {"prog", "width=8", "rate=0.3", "traffic=uniform"};
  const Config c = Config::from_args(4, argv);
  EXPECT_EQ(c.get_int("width", 0), 8);
  EXPECT_DOUBLE_EQ(c.get_double("rate", 0.0), 0.3);
  EXPECT_EQ(c.get_string("traffic", ""), "uniform");
}

TEST(Config, FromArgsRejectsMalformed) {
  const char* bad1[] = {"prog", "novalue"};
  EXPECT_THROW(Config::from_args(2, bad1), std::invalid_argument);
  const char* bad2[] = {"prog", "=5"};
  EXPECT_THROW(Config::from_args(2, bad2), std::invalid_argument);
}

TEST(Config, MalformedTypedValueThrows) {
  Config c;
  c.set("n", "12abc");
  EXPECT_THROW(c.get_int("n", 0), std::invalid_argument);
  c.set("d", "1.5x");
  EXPECT_THROW(c.get_double("d", 0.0), std::invalid_argument);
  c.set("b", "maybe");
  EXPECT_THROW(c.get_bool("b", false), std::invalid_argument);
}

TEST(Config, BoolSpellings) {
  Config c;
  for (const char* s : {"true", "1", "yes"}) {
    c.set("b", s);
    EXPECT_TRUE(c.get_bool("b", false)) << s;
  }
  for (const char* s : {"false", "0", "no"}) {
    c.set("b", s);
    EXPECT_FALSE(c.get_bool("b", true)) << s;
  }
}

TEST(Config, OverwriteAndKeys) {
  Config c;
  c.set("a", "1");
  c.set("a", "2");
  c.set("b", "3");
  EXPECT_EQ(c.get_string("a", ""), "2");
  const auto keys = c.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

TEST(Config, ValueWithEqualsSign) {
  const char* argv[] = {"prog", "expr=a=b"};
  const Config c = Config::from_args(2, argv);
  EXPECT_EQ(c.get_string("expr", ""), "a=b");
}

TEST(Config, RejectUnknownPassesWhenAllKeysQueried) {
  Config c;
  c.set("threads", "4");
  c.set("rate", "0.1");
  (void)c.get_int("threads", 0);
  (void)c.get_double("rate", 0.0);
  EXPECT_NO_THROW(c.reject_unknown());
}

TEST(Config, RejectUnknownSuggestsNearMiss) {
  Config c;
  c.set("thread", "4");           // user typo
  (void)c.get_int("threads", 0);  // the program reads 'threads'
  try {
    c.reject_unknown();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown config key 'thread'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("did you mean 'threads'?"), std::string::npos) << msg;
  }
}

TEST(Config, RejectUnknownOmitsFarFetchedSuggestions) {
  Config c;
  c.set("zzzqqq", "1");
  (void)c.get_int("threads", 0);
  try {
    c.reject_unknown();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos)
        << e.what();
  }
}

TEST(Config, RejectUnknownListsEveryUnknownKey) {
  Config c;
  c.set("alpha", "1");
  c.set("beta", "2");
  try {
    c.reject_unknown();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'alpha'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'beta'"), std::string::npos) << msg;
  }
}

TEST(Config, AllowAndHasMarkKeysRecognized) {
  Config c;
  c.set("deliberately_ignored", "1");
  c.set("probed", "2");
  c.allow("deliberately_ignored");
  (void)c.has("probed");
  EXPECT_NO_THROW(c.reject_unknown());
}

}  // namespace
}  // namespace nocs
