// Tests for the synthetic traffic patterns.
#include <gtest/gtest.h>

#include <map>

#include "noc/traffic.hpp"

namespace nocs::noc {
namespace {

TEST(UniformTraffic, NeverSelfAndInRange) {
  UniformTraffic t(8);
  Rng rng(1);
  for (int src = 0; src < 8; ++src) {
    for (int i = 0; i < 500; ++i) {
      const int d = t.dest(src, rng);
      ASSERT_NE(d, src);
      ASSERT_GE(d, 0);
      ASSERT_LT(d, 8);
    }
  }
}

TEST(UniformTraffic, AllDestinationsRoughlyEqual) {
  UniformTraffic t(5);
  Rng rng(2);
  std::map<int, int> counts;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) ++counts[t.dest(0, rng)];
  for (int d = 1; d < 5; ++d)
    EXPECT_NEAR(counts[d] / static_cast<double>(trials), 0.25, 0.02);
  EXPECT_EQ(counts.count(0), 0u);
}

TEST(UniformTraffic, TwoEndpointsAlwaysTheOther) {
  UniformTraffic t(2);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(t.dest(0, rng), 1);
    EXPECT_EQ(t.dest(1, rng), 0);
  }
}

TEST(PermutationTraffic, AppliesPermAndRedirectsSelf) {
  PermutationTraffic t(4, {1, 0, 2, 3}, "test");
  Rng rng(4);
  EXPECT_EQ(t.dest(0, rng), 1);
  EXPECT_EQ(t.dest(1, rng), 0);
  EXPECT_EQ(t.dest(2, rng), 3);  // perm[2]==2 redirects to next
  EXPECT_EQ(t.dest(3, rng), 0);  // perm[3]==3 redirects (wraps)
}

TEST(HotspotTraffic, HotNodeGetsTheConfiguredShare) {
  HotspotTraffic t(16, /*hot=*/0, /*hot_fraction=*/0.5);
  Rng rng(5);
  int to_hot = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i)
    if (t.dest(5, rng) == 0) ++to_hot;
  // 50% direct + uniform remainder hitting node 0 with prob 1/15.
  const double expect = 0.5 + 0.5 / 15.0;
  EXPECT_NEAR(to_hot / static_cast<double>(trials), expect, 0.02);
}

TEST(HotspotTraffic, HotNodeNeverSendsToItself) {
  HotspotTraffic t(8, 3, 0.9);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) EXPECT_NE(t.dest(3, rng), 3);
}

TEST(NeighborTraffic, RingSuccessor) {
  NeighborTraffic t(6);
  Rng rng(7);
  for (int s = 0; s < 6; ++s) EXPECT_EQ(t.dest(s, rng), (s + 1) % 6);
}

class PermutationKinds : public ::testing::TestWithParam<const char*> {};

TEST_P(PermutationKinds, ValidOverVariousSizes) {
  for (int k : {2, 4, 7, 8, 16}) {
    auto t = make_permutation(GetParam(), k);
    Rng rng(8);
    for (int s = 0; s < k; ++s) {
      const int d = t->dest(s, rng);
      EXPECT_GE(d, 0);
      EXPECT_LT(d, k);
      EXPECT_NE(d, s);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, PermutationKinds,
                         ::testing::Values("transpose", "bitcomp", "bitrev",
                                           "shuffle"));

TEST(Permutations, TransposeOn16SwapsHalves) {
  auto t = make_permutation("transpose", 16);
  Rng rng(9);
  // 16 endpoints = 4 bits; transpose swaps the two 2-bit halves:
  // src 1 (0001) -> 0100 = 4.
  EXPECT_EQ(t->dest(1, rng), 4);
  EXPECT_EQ(t->dest(4, rng), 1);
}

TEST(Permutations, BitcompOn16) {
  auto t = make_permutation("bitcomp", 16);
  Rng rng(10);
  EXPECT_EQ(t->dest(0, rng), 15);
  EXPECT_EQ(t->dest(5, rng), 10);
}

// The dest() contract — in range and never the source — must hold for
// every kind and every endpoint count, including non-powers-of-two where
// the bit permutations fold wrapped indices back into range.
TEST(MakeTraffic, NoKindEverSelfSendsAtAnySize) {
  for (const char* name : {"uniform", "neighbor", "hotspot", "cache",
                           "transpose", "bitcomp", "bitrev", "shuffle"}) {
    for (int k : {2, 3, 4, 5, 7, 8, 9, 16}) {
      auto t = make_traffic(name, k);
      Rng rng(12);
      for (int src = 0; src < k; ++src)
        for (int i = 0; i < 200; ++i) {
          const int d = t->dest(src, rng);
          ASSERT_GE(d, 0) << name << " k=" << k;
          ASSERT_LT(d, k) << name << " k=" << k;
          ASSERT_NE(d, src) << name << " k=" << k << " src=" << src;
        }
    }
  }
}

// Folding wrapped permutation outputs with a modulo would let two sources
// collapse onto one destination and starve another.  The cycle-walking
// fold keeps the map injective: every endpoint receives from at most one
// source via the permutation itself (self-redirects add at most one more).
TEST(Permutations, FoldPreservesBoundedInDegree) {
  for (const char* name : {"transpose", "bitcomp", "bitrev", "shuffle"}) {
    for (int k : {3, 5, 6, 7, 9, 12, 15}) {
      auto t = make_permutation(name, k);
      Rng rng(13);
      std::map<int, int> in_degree;
      for (int src = 0; src < k; ++src) ++in_degree[t->dest(src, rng)];
      for (const auto& [dst, deg] : in_degree)
        EXPECT_LE(deg, 2) << name << " k=" << k << " dst=" << dst;
    }
  }
}

TEST(MakeTraffic, FactoryCoversAllNames) {
  for (const char* name : {"uniform", "neighbor", "hotspot", "transpose",
                           "bitcomp", "bitrev", "shuffle"}) {
    auto t = make_traffic(name, 8);
    ASSERT_NE(t, nullptr) << name;
    Rng rng(11);
    const int d = t->dest(0, rng);
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 8);
  }
  EXPECT_THROW(make_traffic("nosuch", 8), std::invalid_argument);
}

}  // namespace
}  // namespace nocs::noc
