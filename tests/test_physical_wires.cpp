// Tests for the physical wire model (floorplan link lengths/latencies).
#include <gtest/gtest.h>

#include "noc/simulator.hpp"
#include "sprint/floorplanner.hpp"
#include "sprint/network_builder.hpp"
#include "sprint/physical_wires.hpp"

namespace nocs::sprint {
namespace {

TEST(PhysicalWires, IdentityLinksAreOnePitch) {
  const MeshShape mesh(4, 4);
  WireParams wires;
  const PhysicalWires phys(mesh, identity_floorplan(mesh).positions, wires);
  EXPECT_DOUBLE_EQ(phys.link_length_mm(0, 1), wires.node_pitch_mm);
  EXPECT_DOUBLE_EQ(phys.link_length_mm(5, 9), wires.node_pitch_mm);
  EXPECT_DOUBLE_EQ(phys.average_link_length_mm(), wires.node_pitch_mm);
  EXPECT_EQ(phys.link_latency(0, 1), 1);
}

TEST(PhysicalWires, FloorplanStretchesLinks) {
  const MeshShape mesh(4, 4);
  WireParams wires;
  const auto fp = thermal_aware_floorplan(mesh, 0);
  const PhysicalWires phys(mesh, fp.positions, wires);
  EXPECT_GT(phys.average_link_length_mm(), wires.node_pitch_mm);
  EXPECT_GT(phys.max_link_length_mm(), 2.0 * wires.node_pitch_mm);
  // Logical link 0-1 now spans corner-to-corner (slots 0 and 15).
  EXPECT_NEAR(phys.link_length_mm(0, 1),
              euclidean({0, 0}, {3, 3}) * wires.node_pitch_mm, 1e-9);
}

TEST(PhysicalWires, ConventionalLatencyCeils) {
  const MeshShape mesh(2, 2);
  WireParams wires;
  wires.node_pitch_mm = 3.0;
  wires.mm_per_cycle = 3.5;
  // Swap two nodes so one link spans 2 pitches (6mm -> 2 cycles).
  const PhysicalWires phys(mesh, {0, 3, 2, 1}, wires);
  EXPECT_EQ(phys.link_latency(0, 2), 1);  // logical 0-2: slots 0->2, 1 pitch
  // Logical 0-1: slots 0 -> 3 = sqrt(2) pitches = 4.24mm -> 2 cycles.
  EXPECT_EQ(phys.link_latency(0, 1), 2);
}

TEST(PhysicalWires, SmartCollapsesToOneCycle) {
  const MeshShape mesh(4, 4);
  WireParams smart;
  smart.smart_max_pitches = 8;
  const auto fp = thermal_aware_floorplan(mesh, 0);
  const PhysicalWires phys(mesh, fp.positions, smart);
  for (NodeId id = 0; id < 16; ++id) {
    const Coord c = mesh.coord_of(id);
    for (Port p : {Port::kEast, Port::kSouth}) {
      if (!mesh.contains(step(c, p))) continue;
      EXPECT_EQ(phys.link_latency(id, mesh.id_of(step(c, p))), 1);
    }
  }
}

TEST(PhysicalWires, SmartWithSmallReachStillMultiCycle) {
  const MeshShape mesh(4, 4);
  WireParams smart;
  smart.smart_max_pitches = 2;
  const auto fp = thermal_aware_floorplan(mesh, 0);
  const PhysicalWires phys(mesh, fp.positions, smart);
  // Link 0-1 spans sqrt(18) ~ 4.24 pitches -> ceil(4.24/2) = 3 cycles.
  EXPECT_EQ(phys.link_latency(0, 1), 3);
}

TEST(PhysicalWires, RejectsNonAdjacentQueries) {
  const MeshShape mesh(4, 4);
  const PhysicalWires phys(mesh, identity_floorplan(mesh).positions,
                           WireParams{});
  EXPECT_DEATH(phys.link_length_mm(0, 2), "precondition");
  EXPECT_DEATH(phys.link_length_mm(0, 5), "precondition");
}

TEST(PhysicalWires, RejectsNonPermutationPositions) {
  const MeshShape mesh(2, 2);
  EXPECT_DEATH(PhysicalWires(mesh, {0, 0, 1, 2}, WireParams{}),
               "precondition");
}

TEST(FloorplannedNetwork, SlowerWiresSlowerNetwork) {
  noc::NetworkParams params;
  const MeshShape mesh = params.shape();
  const auto fp = thermal_aware_floorplan(mesh, 0);
  noc::SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 3000;
  cfg.injection_rate = 0.1;

  WireParams conventional;
  auto slow = make_floorplanned_network(params, 4, "uniform", 3,
                                        fp.positions, conventional);
  const double slow_lat =
      run_simulation(*slow.network, cfg).avg_packet_latency;

  WireParams smart;
  smart.smart_max_pitches = 8;
  auto fast = make_floorplanned_network(params, 4, "uniform", 3,
                                        fp.positions, smart);
  const double fast_lat =
      run_simulation(*fast.network, cfg).avg_packet_latency;

  EXPECT_GT(slow_lat, fast_lat + 1.0);
}

TEST(FloorplannedNetwork, SmartOnIdentityMatchesPlainNetwork) {
  noc::NetworkParams params;
  const MeshShape mesh = params.shape();
  noc::SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 3000;
  cfg.injection_rate = 0.1;

  auto plain = make_noc_sprinting_network(params, 4, "uniform", 9);
  const double plain_lat =
      run_simulation(*plain.network, cfg).avg_packet_latency;

  auto ident = make_floorplanned_network(
      params, 4, "uniform", 9, identity_floorplan(mesh).positions,
      WireParams{});
  const double ident_lat =
      run_simulation(*ident.network, cfg).avg_packet_latency;

  EXPECT_DOUBLE_EQ(plain_lat, ident_lat);
}

TEST(Network, LinkLatencyAccessor) {
  noc::NetworkParams params;
  noc::XyRouting xy;
  noc::Network net(params, &xy,
                   [](NodeId from, NodeId to) { return from + to > 10 ? 3 : 1; });
  EXPECT_EQ(net.link_latency(0, 1), 1);
  EXPECT_EQ(net.link_latency(14, 15), 3);
  EXPECT_DEATH(net.link_latency(0, 5), "precondition");  // not adjacent
}

}  // namespace
}  // namespace nocs::sprint
