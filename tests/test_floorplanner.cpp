// Tests for Algorithms 3 & 4 — the thermal-aware floorplanner.
#include <gtest/gtest.h>

#include <set>

#include "sprint/floorplanner.hpp"
#include "sprint/topology.hpp"

namespace nocs::sprint {
namespace {

TEST(Floorplanner, PositionsFormAPermutation) {
  for (auto [w, h] : {std::pair{4, 4}, std::pair{2, 2}, std::pair{5, 3},
                      std::pair{8, 8}}) {
    const MeshShape mesh(w, h);
    const FloorplanResult r = thermal_aware_floorplan(mesh, 0);
    ASSERT_EQ(static_cast<int>(r.positions.size()), mesh.size());
    std::set<int> slots(r.positions.begin(), r.positions.end());
    EXPECT_EQ(static_cast<int>(slots.size()), mesh.size())
        << w << "x" << h;
    for (int s : slots) EXPECT_TRUE(mesh.valid(s));
  }
}

TEST(Floorplanner, MasterStaysPut) {
  const MeshShape mesh(4, 4);
  const FloorplanResult r = thermal_aware_floorplan(mesh, 0);
  EXPECT_EQ(r.positions[0], 0);
}

TEST(Floorplanner, Deterministic) {
  const MeshShape mesh(4, 4);
  const FloorplanResult a = thermal_aware_floorplan(mesh, 0);
  const FloorplanResult b = thermal_aware_floorplan(mesh, 0);
  EXPECT_EQ(a.positions, b.positions);
  EXPECT_EQ(a.total_wire_length, b.total_wire_length);
}

TEST(Floorplanner, FourCoreSprintScattersPhysically) {
  // The paper's Figure 5b intuition: the 4 logically-adjacent sprint nodes
  // (0, 1, 4, 5) are spread apart physically; the identity placement
  // clusters them in a 2x2 corner.
  const MeshShape mesh(4, 4);
  const FloorplanResult fp = thermal_aware_floorplan(mesh, 0);
  const auto active = active_set(mesh, 4, 0);
  const double spread =
      thermal_proximity(mesh, active, fp.positions);
  const double clustered =
      thermal_proximity(mesh, active, identity_floorplan(mesh).positions);
  EXPECT_LT(spread, 0.6 * clustered);
}

TEST(Floorplanner, SpreadsEverySmallSprintLevel) {
  const MeshShape mesh(4, 4);
  const FloorplanResult fp = thermal_aware_floorplan(mesh, 0);
  const auto identity = identity_floorplan(mesh).positions;
  for (int k : {2, 3, 4, 6, 8}) {
    const auto active = active_set(mesh, k, 0);
    EXPECT_LT(thermal_proximity(mesh, active, fp.positions),
              thermal_proximity(mesh, active, identity))
        << "level " << k;
  }
}

TEST(Floorplanner, WireLengthCostIsReal) {
  // Algorithm 3 trades wiring complexity for heat spreading (Section 3.3).
  const MeshShape mesh(4, 4);
  const FloorplanResult fp = thermal_aware_floorplan(mesh, 0);
  const FloorplanResult id = identity_floorplan(mesh);
  EXPECT_GT(fp.total_wire_length, id.total_wire_length);
  // Identity wire length: 24 unit links in a 4x4 mesh.
  EXPECT_DOUBLE_EQ(id.total_wire_length, 24.0);
}

TEST(Floorplanner, SecondNodeGoesFarFromMaster) {
  // Algorithm 4's first real decision: node 1 (logically adjacent to the
  // master) should be placed at the physical slot farthest from slot 0 —
  // the opposite corner.
  const MeshShape mesh(4, 4);
  const FloorplanResult fp = thermal_aware_floorplan(mesh, 0);
  EXPECT_EQ(fp.positions[1], 15);
}

TEST(IdentityFloorplan, IsIdentity) {
  const MeshShape mesh(3, 3);
  const FloorplanResult r = identity_floorplan(mesh);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(r.positions[static_cast<std::size_t>(i)], i);
  EXPECT_DOUBLE_EQ(r.total_wire_length, 12.0);  // 2*3 + 3*2 unit links
}

TEST(ThermalProximity, HigherWhenCloser) {
  const MeshShape mesh(4, 4);
  const auto identity = identity_floorplan(mesh).positions;
  // {0,1} adjacent vs {0,15} diagonal extremes.
  EXPECT_GT(thermal_proximity(mesh, {0, 1}, identity),
            thermal_proximity(mesh, {0, 15}, identity));
}

TEST(Floorplanner, WorksFromOtherMasters) {
  const MeshShape mesh(4, 4);
  for (NodeId master : {0, 3, 12, 15}) {
    const FloorplanResult r = thermal_aware_floorplan(mesh, master);
    std::set<int> slots(r.positions.begin(), r.positions.end());
    EXPECT_EQ(slots.size(), 16u) << "master " << master;
    EXPECT_EQ(r.positions[static_cast<std::size_t>(master)], master);
  }
}

}  // namespace
}  // namespace nocs::sprint
