// Tests for the CMP <-> NoC co-simulation loop.
#include <gtest/gtest.h>

#include "sprint/cosim.hpp"

namespace nocs::sprint {
namespace {

noc::NetworkParams table1() { return noc::NetworkParams{}; }

CosimConfig quick(std::uint64_t seed = 7) {
  CosimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 3000;
  cfg.seed = seed;
  return cfg;
}

TEST(Cosim, LevelMatchesOfflineProfile) {
  const cmp::PerfModel pm(16);
  const auto suite = cmp::parsec_suite(16);
  for (const char* name : {"dedup", "vips", "blackscholes"}) {
    const auto& w = cmp::find_workload(suite, name);
    const CosimResult r = cosimulate(table1(), w, pm, quick());
    EXPECT_EQ(r.level, pm.optimal_level(w)) << name;
  }
}

TEST(Cosim, LatencyAndPowerGapsForMidLevel) {
  const cmp::PerfModel pm(16);
  const auto suite = cmp::parsec_suite(16);
  const auto& dedup = cmp::find_workload(suite, "dedup");  // level 4
  const CosimResult r = cosimulate(table1(), dedup, pm, quick());
  EXPECT_FALSE(r.full_saturated);
  EXPECT_FALSE(r.noc_saturated);
  EXPECT_LT(r.noc_latency, r.full_latency);
  EXPECT_LT(r.noc_noc_power, 0.4 * r.full_noc_power);
}

TEST(Cosim, FeedbackSpeedsUpNocSprintBeyondBaseModel) {
  // CDOR's measured latency is below the full-network reference, so the
  // coupled execution time must be (slightly) below the base T(k).
  const cmp::PerfModel pm(16);
  const auto suite = cmp::parsec_suite(16);
  const auto& canneal = cmp::find_workload(suite, "canneal");  // gamma 0.30
  const CosimResult r = cosimulate(table1(), canneal, pm, quick());
  EXPECT_LT(r.exec_noc, pm.exec_time(canneal, r.level));
  // The full run uses its own latency as reference: no adjustment.
  EXPECT_NEAR(r.exec_full, pm.exec_time(canneal, 16), 1e-12);
}

TEST(Cosim, Level16IsAWash) {
  // blackscholes sprints all 16 cores: both configurations are the full
  // mesh, so latency and power must be close and exec_noc ~ exec_full.
  const cmp::PerfModel pm(16);
  const auto suite = cmp::parsec_suite(16);
  const auto& bs = cmp::find_workload(suite, "blackscholes");
  const CosimResult r = cosimulate(table1(), bs, pm, quick());
  EXPECT_NEAR(r.noc_latency, r.full_latency, 0.1 * r.full_latency);
  EXPECT_NEAR(r.noc_noc_power, r.full_noc_power, 0.1 * r.full_noc_power);
}

TEST(Cosim, DeterministicForSameSeed) {
  const cmp::PerfModel pm(16);
  const auto suite = cmp::parsec_suite(16);
  const auto& w = cmp::find_workload(suite, "ferret");
  const CosimResult a = cosimulate(table1(), w, pm, quick(11));
  const CosimResult b = cosimulate(table1(), w, pm, quick(11));
  EXPECT_EQ(a.noc_latency, b.noc_latency);
  EXPECT_EQ(a.full_latency, b.full_latency);
  EXPECT_EQ(a.exec_noc, b.exec_noc);
}

TEST(Cosim, SerialWorkloadSimulatedAtMinimumSize) {
  const cmp::PerfModel pm(16);
  cmp::WorkloadParams serial;
  serial.name = "allserial";
  serial.serial_frac = 0.99;
  serial.alpha = 0.05;
  serial.injection_rate = 0.05;
  const CosimResult r = cosimulate(table1(), serial, pm, quick());
  EXPECT_EQ(r.level, 1);
  EXPECT_GT(r.noc_latency, 0.0);  // simulated at the 2-node minimum
}

}  // namespace
}  // namespace nocs::sprint
