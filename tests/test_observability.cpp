// Observability-layer integration tests: the JSON value type, the metrics
// registry, Chrome trace emission, and `report=` run reports.  The core
// guarantees under test:
//   - trace files are well-formed Chrome trace-event JSON,
//   - metrics snapshots agree with the StatsCollector ground truth,
//   - SimResults/CosimResult reports round-trip through parse() exactly,
//   - tracing never perturbs simulation results (bit-identical runs).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "noc/simulator.hpp"
#include "noc/stats_collector.hpp"
#include "sprint/cosim.hpp"
#include "sprint/network_builder.hpp"

namespace nocs {
namespace {

std::string tmp_path(const char* name) {
  return testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// --- json ------------------------------------------------------------------

TEST(Json, BuildDumpParseRoundTrip) {
  json::Value doc = json::Value::object();
  doc.set("name", "nocs");
  doc.set("count", 42);
  doc.set("pi", 3.25);
  doc.set("ok", true);
  doc.set("none", json::Value());
  json::Value arr = json::Value::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(false);
  doc.set("arr", std::move(arr));

  for (int indent : {0, 2}) {
    const json::Value back = json::Value::parse(doc.dump(indent));
    EXPECT_EQ(back.at("name").as_string(), "nocs");
    EXPECT_EQ(back.at("count").as_number(), 42.0);
    EXPECT_EQ(back.at("pi").as_number(), 3.25);
    EXPECT_TRUE(back.at("ok").as_bool());
    EXPECT_TRUE(back.at("none").is_null());
    ASSERT_EQ(back.at("arr").size(), 3u);
    EXPECT_EQ(back.at("arr").at(std::size_t{1}).as_string(), "two");
  }
}

TEST(Json, PreservesInsertionOrder) {
  json::Value doc = json::Value::object();
  doc.set("zeta", 1);
  doc.set("alpha", 2);
  doc.set("mid", 3);
  const json::Value back = json::Value::parse(doc.dump());
  const auto& m = back.members();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0].first, "zeta");
  EXPECT_EQ(m[1].first, "alpha");
  EXPECT_EQ(m[2].first, "mid");
}

TEST(Json, NumbersRoundTripExactly) {
  for (double d : {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23, -0.0, 123456789.0,
                   2.2250738585072014e-308}) {
    const json::Value v = json::Value::parse(json::format_number(d));
    EXPECT_EQ(v.as_number(), d) << "for " << d;
  }
}

TEST(Json, StringEscapes) {
  json::Value doc = json::Value::object();
  doc.set("s", std::string("quote\" slash\\ tab\t nl\n ctrl\x01"));
  const json::Value back = json::Value::parse(doc.dump());
  EXPECT_EQ(back.at("s").as_string(), "quote\" slash\\ tab\t nl\n ctrl\x01");
  EXPECT_EQ(json::Value::parse("\"\\u0041\\u00e9\"").as_string(),
            "A\xc3\xa9");  // \u escapes decode to UTF-8
}

TEST(Json, ParseRejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1 2",
                          "\"unterminated", "{\"a\" 1}", "nulll"}) {
    EXPECT_THROW(json::Value::parse(bad), std::invalid_argument) << bad;
  }
  EXPECT_THROW(json::Value(1.0).as_string(), std::invalid_argument);
  EXPECT_THROW(json::Value("x").at("missing"), std::invalid_argument);
}

// --- metrics registry ------------------------------------------------------

TEST(Metrics, RegistryOwnsAndReturnsStableObjects) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a.count");
  c.inc();
  reg.counter("a.count").inc(4);  // same object by name
  EXPECT_EQ(c.value(), 5u);
  reg.gauge("a.gauge").set(2.5);
  reg.histogram("a.hist").add(3.0);
  EXPECT_EQ(reg.size(), 3u);

  ASSERT_NE(reg.find_counter("a.count"), nullptr);
  EXPECT_EQ(reg.find_counter("a.count")->value(), 5u);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  EXPECT_EQ(reg.find_gauge("a.gauge")->value(), 2.5);
  EXPECT_EQ(reg.find_histogram("a.hist")->total(), 1u);
}

TEST(Metrics, SnapshotSerializesAllFamilies) {
  MetricsRegistry reg;
  reg.counter("events").set(7);
  reg.gauge("temp").set(318.5);
  Histogram& h = reg.histogram("lat", 2.0, 8);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i));

  const json::Value snap = json::Value::parse(reg.to_json().dump(2));
  EXPECT_EQ(snap.at("counters").at("events").as_number(), 7.0);
  EXPECT_EQ(snap.at("gauges").at("temp").as_number(), 318.5);
  const json::Value& lat = snap.at("histograms").at("lat");
  EXPECT_EQ(lat.at("count").as_number(), 10.0);
  EXPECT_GT(lat.at("p99").as_number(), lat.at("p50").as_number());

  const std::string path = tmp_path("metrics.json");
  ASSERT_TRUE(reg.write_json(path));
  EXPECT_NO_THROW(json::Value::parse(slurp(path)));
  std::remove(path.c_str());
}

// --- stats collector -------------------------------------------------------

// Regression: packets with msg_class outside [0, kMaxStatClasses) were
// silently dropped from per-class statistics; they must land in the
// unclassified bucket so class totals always sum to the packet count.
TEST(StatsCollector, UnclassifiedBucketCatchesOutOfRangeClasses) {
  noc::StatsCollector s;
  s.on_packet_ejected(10.0, 8.0, 2, 0);
  s.on_packet_ejected(20.0, 18.0, 3, noc::kMaxStatClasses);  // one past end
  s.on_packet_ejected(30.0, 28.0, 4, -1);                    // negative
  s.on_packet_ejected(40.0, 38.0, 5, 1000);                  // way out

  EXPECT_EQ(s.class_latency(0).count(), 1u);
  EXPECT_EQ(s.unclassified_latency().count(), 3u);
  EXPECT_DOUBLE_EQ(s.unclassified_latency().mean(), 30.0);

  std::uint64_t classed = s.unclassified_latency().count();
  for (int c = 0; c < noc::kMaxStatClasses; ++c)
    classed += s.class_latency(c).count();
  EXPECT_EQ(classed, s.ejected_packets());
}

TEST(StatsCollectorDeathTest, ClassLatencyRejectsOutOfRangeIndex) {
  noc::StatsCollector s;
  EXPECT_DEATH((void)s.class_latency(noc::kMaxStatClasses), "precondition");
  EXPECT_DEATH((void)s.class_latency(-1), "precondition");
}

TEST(StatsCollector, MetricsSnapshotMatchesGroundTruth) {
  noc::StatsCollector s;
  for (int i = 0; i < 50; ++i) {
    s.on_packet_generated();
    s.on_packet_ejected(10.0 + i, 8.0 + i, 3, i % 2);
    s.on_flit_ejected();
  }
  s.resilience().retransmissions = 4;
  s.resilience().acks_sent = 50;

  MetricsRegistry reg;
  s.export_metrics(reg);
  EXPECT_EQ(reg.find_counter("noc.packets_generated")->value(),
            s.generated_packets());
  EXPECT_EQ(reg.find_counter("noc.packets_ejected")->value(),
            s.ejected_packets());
  EXPECT_EQ(reg.find_counter("noc.unclassified_packets")->value(), 0u);
  EXPECT_DOUBLE_EQ(reg.find_gauge("noc.packet_latency.mean")->value(),
                   s.packet_latency().mean());
  EXPECT_DOUBLE_EQ(reg.find_gauge("noc.packet_latency.p99")->value(),
                   s.latency_quantile(0.99));
  EXPECT_EQ(reg.find_counter("resilience.retransmissions")->value(), 4u);
  EXPECT_EQ(reg.find_counter("resilience.acks_sent")->value(), 50u);
}

// --- trace -----------------------------------------------------------------

TEST(Trace, DisabledEmittersAreSilentNoOps) {
  ASSERT_FALSE(trace::enabled());
  trace::complete("x", "cat", trace::kSimPid, 0, 0.0, 1.0);
  trace::instant("y", "cat", trace::kSimPid, 0, 0.0);
  EXPECT_EQ(trace::event_count(), 0u);
  EXPECT_FALSE(trace::end());  // no active session
}

TEST(Trace, SimulationTraceIsWellFormedChromeJson) {
  const std::string path = tmp_path("trace.json");
  ASSERT_TRUE(trace::begin(path));
  EXPECT_FALSE(trace::begin(path));  // second begin refused

  noc::NetworkParams np;  // 4x4 Table 1 mesh
  auto b = sprint::make_noc_sprinting_network(np, 4, "uniform", 7);
  noc::SimConfig sim;
  sim.warmup = 500;
  sim.measure = 2000;
  sim.injection_rate = 0.1;
  sim.trace_sample = 64;
  const noc::SimResults r = noc::run_simulation(*b.network, sim);
  EXPECT_GT(r.packets_ejected, 0u);

  ASSERT_TRUE(trace::end());
  EXPECT_FALSE(trace::enabled());

  const json::Value doc = json::Value::parse(slurp(path));
  const json::Value& ev = doc.at("traceEvents");
  ASSERT_TRUE(ev.is_array());
  ASSERT_GT(ev.size(), 10u);

  std::set<std::string> spans, counters;
  for (std::size_t i = 0; i < ev.size(); ++i) {
    const json::Value& e = ev.at(i);
    ASSERT_TRUE(e.at("name").is_string());
    ASSERT_TRUE(e.at("ph").is_string());
    ASSERT_TRUE(e.at("pid").is_number());
    const std::string ph = e.at("ph").as_string();
    if (ph == "X") {
      EXPECT_TRUE(e.at("dur").is_number());
      spans.insert(e.at("name").as_string());
    } else if (ph == "C") {
      counters.insert(e.at("name").as_string());
    }
    if (ph != "M") {
      EXPECT_TRUE(e.at("ts").is_number());
    }
  }
  // The three simulation phases render as spans on the sim timeline...
  EXPECT_TRUE(spans.count("warmup"));
  EXPECT_TRUE(spans.count("measure"));
  EXPECT_TRUE(spans.count("drain"));
  // ...and periodic samples as counter tracks.
  EXPECT_TRUE(counters.count("network_activity"));
  EXPECT_TRUE(counters.count("router_occupancy"));
  std::remove(path.c_str());
}

TEST(Trace, TracingDoesNotPerturbSimulationResults) {
  noc::NetworkParams np;
  noc::SimConfig sim;
  sim.warmup = 500;
  sim.measure = 2000;
  sim.injection_rate = 0.15;
  sim.trace_sample = 32;

  auto plain = sprint::make_noc_sprinting_network(np, 4, "uniform", 3);
  const noc::SimResults a = noc::run_simulation(*plain.network, sim);

  const std::string path = tmp_path("trace_perturb.json");
  ASSERT_TRUE(trace::begin(path));
  auto traced = sprint::make_noc_sprinting_network(np, 4, "uniform", 3);
  const noc::SimResults b = noc::run_simulation(*traced.network, sim);
  ASSERT_TRUE(trace::end());
  std::remove(path.c_str());

  EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
  EXPECT_EQ(a.avg_network_latency, b.avg_network_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.packets_ejected, b.packets_ejected);
  EXPECT_EQ(a.accepted_rate, b.accepted_rate);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.counters.link_flits, b.counters.link_flits);
}

// --- run reports -----------------------------------------------------------

TEST(Report, SimResultsRoundTripExactly) {
  noc::NetworkParams np;
  auto b = sprint::make_noc_sprinting_network(np, 4, "uniform", 7);
  noc::SimConfig sim;
  sim.warmup = 500;
  sim.measure = 2000;
  sim.injection_rate = 0.1;
  const noc::SimResults r = noc::run_simulation(*b.network, sim);
  ASSERT_GT(r.packets_ejected, 0u);

  const std::string path = tmp_path("report.json");
  ASSERT_TRUE(noc::write_report(path, noc::to_json(r)));
  const json::Value back = json::Value::parse(slurp(path));
  std::remove(path.c_str());

  EXPECT_EQ(back.at("avg_packet_latency").as_number(), r.avg_packet_latency);
  EXPECT_EQ(back.at("avg_network_latency").as_number(),
            r.avg_network_latency);
  EXPECT_EQ(back.at("p50_latency").as_number(), r.p50_latency);
  EXPECT_EQ(back.at("p99_latency").as_number(), r.p99_latency);
  EXPECT_EQ(back.at("max_packet_latency").as_number(), r.max_packet_latency);
  EXPECT_EQ(back.at("avg_hops").as_number(), r.avg_hops);
  EXPECT_EQ(back.at("packets_generated").as_number(),
            static_cast<double>(r.packets_generated));
  EXPECT_EQ(back.at("packets_ejected").as_number(),
            static_cast<double>(r.packets_ejected));
  EXPECT_EQ(back.at("accepted_rate").as_number(), r.accepted_rate);
  EXPECT_EQ(back.at("saturated").as_bool(), r.saturated);
  EXPECT_EQ(back.at("histogram_saturated").as_bool(), r.histogram_saturated);
  EXPECT_EQ(back.at("hung").as_bool(), r.hung);
  EXPECT_EQ(back.at("cycles").as_number(), static_cast<double>(r.cycles));
  EXPECT_EQ(back.at("counters").at("link_flits").as_number(),
            static_cast<double>(r.counters.link_flits));
  EXPECT_EQ(back.at("resilience").at("retransmissions").as_number(),
            static_cast<double>(r.resilience.retransmissions));
  // Quantiles must bracket sensibly after the ceil/interpolation fix.
  EXPECT_LE(r.p50_latency, r.p99_latency);
  EXPECT_LE(r.p99_latency, r.max_packet_latency + 2.0);
}

TEST(Report, SimResultsMetricsExportMatchesFields) {
  noc::NetworkParams np;
  auto b = sprint::make_noc_sprinting_network(np, 4, "uniform", 7);
  noc::SimConfig sim;
  sim.warmup = 500;
  sim.measure = 1000;
  const noc::SimResults r = noc::run_simulation(*b.network, sim);

  MetricsRegistry reg;
  r.export_metrics(reg);
  EXPECT_DOUBLE_EQ(reg.find_gauge("sim.avg_packet_latency")->value(),
                   r.avg_packet_latency);
  EXPECT_EQ(reg.find_counter("sim.packets_ejected")->value(),
            r.packets_ejected);
  EXPECT_EQ(reg.find_counter("sim.cycles")->value(),
            static_cast<std::uint64_t>(r.cycles));
}

// The exact fig09 dedup configuration (Table 1 mesh, default cosim
// windows, seed 7): the report payload must carry the numbers
// EXPERIMENTS.md records for that row — dedup's optimal sprint level is
// 4 — and round-trip them bit-exactly through dump/parse.
TEST(Report, CosimResultRoundTripsFig09Numbers) {
  const noc::NetworkParams np;
  const cmp::PerfModel pm(np.num_nodes());
  const auto suite = cmp::parsec_suite(np.num_nodes());
  const cmp::WorkloadParams& w = cmp::find_workload(suite, "dedup");
  sprint::CosimConfig cc;  // fig09 uses the defaults
  cc.seed = 7;
  const sprint::CosimResult r = sprint::cosimulate(np, w, pm, cc);
  EXPECT_EQ(r.level, 4);  // the Section 4.4 anchor (EXPERIMENTS.md)
  EXPECT_LT(r.noc_latency, r.full_latency);  // CDOR cuts latency
  EXPECT_GT(r.full_latency, 0.0);
  EXPECT_FALSE(r.noc_saturated);

  const json::Value back =
      json::Value::parse(sprint::to_json(r).dump(2));
  EXPECT_EQ(back.at("level").as_number(), static_cast<double>(r.level));
  EXPECT_EQ(back.at("full_latency").as_number(), r.full_latency);
  EXPECT_EQ(back.at("noc_latency").as_number(), r.noc_latency);
  EXPECT_EQ(back.at("full_noc_power").as_number(), r.full_noc_power);
  EXPECT_EQ(back.at("noc_noc_power").as_number(), r.noc_noc_power);
  EXPECT_EQ(back.at("exec_full").as_number(), r.exec_full);
  EXPECT_EQ(back.at("exec_noc").as_number(), r.exec_noc);
  EXPECT_EQ(back.at("full_saturated").as_bool(), r.full_saturated);
  EXPECT_EQ(back.at("noc_saturated").as_bool(), r.noc_saturated);
}

}  // namespace
}  // namespace nocs
