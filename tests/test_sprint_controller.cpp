// Tests for the SprintController facade.
#include <gtest/gtest.h>

#include "cmp/perf_model.hpp"
#include "power/chip_power.hpp"
#include "sprint/sprint_controller.hpp"
#include "sprint/topology.hpp"
#include "thermal/pcm.hpp"

namespace nocs::sprint {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : mesh_(4, 4),
        perf_(16),
        chip_(power::ChipPowerParams{}),
        pcm_(thermal::PcmParams{}),
        ctl_(mesh_, perf_, chip_, pcm_, 0, /*duration_cap=*/10.0),
        suite_(cmp::parsec_suite(16)) {}

  MeshShape mesh_;
  cmp::PerfModel perf_;
  power::ChipPowerModel chip_;
  thermal::PcmModel pcm_;
  SprintController ctl_;
  std::vector<cmp::WorkloadParams> suite_;
};

TEST_F(ControllerTest, LevelPerMode) {
  const auto& dedup = cmp::find_workload(suite_, "dedup");
  EXPECT_EQ(ctl_.plan(dedup, SprintMode::kNonSprinting).level, 1);
  EXPECT_EQ(ctl_.plan(dedup, SprintMode::kFullSprinting).level, 16);
  EXPECT_EQ(ctl_.plan(dedup, SprintMode::kFineGrained).level, 4);
  EXPECT_EQ(ctl_.plan(dedup, SprintMode::kNocSprinting).level, 4);
}

TEST_F(ControllerTest, ActiveSetIsAlgorithm1Prefix) {
  const auto& dedup = cmp::find_workload(suite_, "dedup");
  const SprintPlan p = ctl_.plan(dedup, SprintMode::kNocSprinting);
  EXPECT_EQ(p.active, active_set(mesh_, 4, 0));
}

TEST_F(ControllerTest, SpeedupConsistentWithPerfModel) {
  for (const auto& w : suite_) {
    const SprintPlan p = ctl_.plan(w, SprintMode::kNocSprinting);
    EXPECT_NEAR(p.speedup, perf_.speedup(w, p.level), 1e-12) << w.name;
    EXPECT_NEAR(p.exec_time, perf_.exec_time(w, p.level), 1e-12) << w.name;
  }
}

TEST_F(ControllerTest, NonSprintingIsBaseline) {
  const auto& w = suite_.front();
  const SprintPlan p = ctl_.plan(w, SprintMode::kNonSprinting);
  EXPECT_DOUBLE_EQ(p.exec_time, 1.0);
  EXPECT_DOUBLE_EQ(p.speedup, 1.0);
  EXPECT_EQ(p.active.size(), 1u);
  EXPECT_EQ(p.active[0], 0);  // the master
  EXPECT_DOUBLE_EQ(p.sprint_duration, 10.0);  // sustainable forever
}

TEST_F(ControllerTest, CorePowerOrderingFigure8) {
  // For any workload whose optimum is below 16:
  // noc-sprinting < fine-grained < full-sprinting core power.
  for (const auto& w : suite_) {
    const SprintPlan full = ctl_.plan(w, SprintMode::kFullSprinting);
    const SprintPlan fg = ctl_.plan(w, SprintMode::kFineGrained);
    const SprintPlan noc = ctl_.plan(w, SprintMode::kNocSprinting);
    EXPECT_LE(noc.core_power, fg.core_power + 1e-12) << w.name;
    EXPECT_LE(fg.core_power, full.core_power + 1e-12) << w.name;
    if (fg.level < 16) {
      EXPECT_LT(noc.core_power, fg.core_power) << w.name;
      EXPECT_LT(fg.core_power, full.core_power) << w.name;
    }
  }
}

TEST_F(ControllerTest, OnlyNocSprintingGatesTheNetwork) {
  const auto& dedup = cmp::find_workload(suite_, "dedup");
  const SprintPlan fg = ctl_.plan(dedup, SprintMode::kFineGrained);
  const SprintPlan noc = ctl_.plan(dedup, SprintMode::kNocSprinting);
  EXPECT_DOUBLE_EQ(fg.noc_power, chip_.noc_power(16));
  EXPECT_DOUBLE_EQ(noc.noc_power, chip_.noc_power(4));
  EXPECT_LT(noc.noc_power, fg.noc_power);
}

TEST_F(ControllerTest, DurationOrderingSection44) {
  // Lower sprint power => no shorter sprint, for every workload.
  for (const auto& w : suite_) {
    const SprintPlan full = ctl_.plan(w, SprintMode::kFullSprinting);
    const SprintPlan noc = ctl_.plan(w, SprintMode::kNocSprinting);
    EXPECT_LE(full.chip_power, 90.0) << w.name;
    EXPECT_GE(noc.sprint_duration, full.sprint_duration - 1e-12) << w.name;
  }
}

TEST_F(ControllerTest, ChipPowerIncludesUncore) {
  const auto& w = suite_.front();
  const SprintPlan p = ctl_.plan(w, SprintMode::kNocSprinting);
  EXPECT_GT(p.chip_power, p.core_power + p.noc_power);
}

TEST_F(ControllerTest, PlanSuiteCoversAll) {
  const auto plans = ctl_.plan_suite(suite_, SprintMode::kNocSprinting);
  ASSERT_EQ(plans.size(), suite_.size());
  for (std::size_t i = 0; i < plans.size(); ++i)
    EXPECT_EQ(plans[i].workload, suite_[i].name);
}

TEST(SprintMode, Names) {
  EXPECT_STREQ(to_string(SprintMode::kNonSprinting), "non-sprinting");
  EXPECT_STREQ(to_string(SprintMode::kFullSprinting), "full-sprinting");
  EXPECT_STREQ(to_string(SprintMode::kFineGrained), "fine-grained");
  EXPECT_STREQ(to_string(SprintMode::kNocSprinting), "noc-sprinting");
}

TEST(SprintControllerValidation, MeshMustMatchModels) {
  const MeshShape mesh(2, 2);  // 4 nodes vs 16-core models
  const cmp::PerfModel perf(16);
  const power::ChipPowerModel chip{power::ChipPowerParams{}};
  const thermal::PcmModel pcm{thermal::PcmParams{}};
  EXPECT_DEATH(SprintController(mesh, perf, chip, pcm), "precondition");
}

}  // namespace
}  // namespace nocs::sprint
