// Tests for deterministic intra-simulation parallelism: the sharded
// barrier-synchronous tick must produce bit-identical SimResults for every
// sim_threads value — across plain, statically gated, dynamically gated,
// faulted, and traced runs — and a checkpoint written under one thread
// count must restore bit-identically under another.
//
// These run under the `parallel` ctest label so the ThreadSanitizer CI job
// can target exactly the multi-threaded surface.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/snapshot.hpp"
#include "common/trace.hpp"
#include "fault/fault_injector.hpp"
#include "noc/simulator.hpp"
#include "sprint/network_builder.hpp"

namespace nocs {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

fault::FaultParams storm_params() {
  fault::FaultParams fp;
  fp.enabled = true;
  fp.seed = 42;
  fp.flip_rate = 0.002;
  fp.drop_rate = 0.01;
  fp.link_down_rate = 0.0005;
  fp.link_down_cycles = 30;
  fp.ack_timeout = 200;
  fp.max_backoff = 2000;
  return fp;
}

struct Rig {
  std::unique_ptr<noc::RoutingFunction> routing;
  std::unique_ptr<noc::Network> net;
  std::unique_ptr<fault::FaultInjector> injector;
};

enum class Scheme {
  kSprint,        // CDOR sprint region, dark rest statically gated
  kFullDynamic,   // all routers on, dynamic power gating enabled
};

/// An 8x8 mesh so thread counts up to 8 give every shard a real row-band
/// (the 4x4 Table 1 mesh would clamp sim_threads to 4).
Rig make_rig(Scheme scheme, bool faults, std::uint64_t seed = 7) {
  noc::NetworkParams params;
  params.width = 8;
  params.height = 8;
  auto bundle =
      scheme == Scheme::kSprint
          ? sprint::make_noc_sprinting_network(params, 16, "uniform", seed)
          : sprint::make_full_sprinting_network(params, 16, "uniform", seed);
  Rig rig;
  rig.routing = std::move(bundle.routing);
  rig.net = std::move(bundle.network);
  if (scheme == Scheme::kFullDynamic) rig.net->set_dynamic_gating(true);
  if (faults) {
    rig.injector =
        std::make_unique<fault::FaultInjector>(params.shape(), storm_params());
    const noc::ProtectionParams prot = storm_params().protection();
    rig.net->enable_resilience(rig.injector.get(), &prot);
  }
  return rig;
}

noc::SimConfig short_sim(bool faults) {
  noc::SimConfig sim;
  sim.warmup = 300;
  sim.measure = 1200;
  sim.drain_max = 20000;
  sim.injection_rate = 0.15;
  if (faults) sim.watchdog_cycles = 50000;
  return sim;
}

noc::CheckpointConfig ckpt_for(Rig& rig, noc::CheckpointConfig c) {
  if (rig.injector != nullptr)
    c.extras.emplace_back("fault", rig.injector.get());
  return c;
}

void expect_identical(const noc::SimResults& a, const noc::SimResults& b) {
  EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
  EXPECT_EQ(a.avg_network_latency, b.avg_network_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.packets_ejected, b.packets_ejected);
  EXPECT_EQ(a.accepted_rate, b.accepted_rate);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.histogram_saturated, b.histogram_saturated);
  EXPECT_EQ(a.max_packet_latency, b.max_packet_latency);
  EXPECT_EQ(a.hung, b.hung);
  EXPECT_EQ(a.interrupted, b.interrupted);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.counters.buffer_writes, b.counters.buffer_writes);
  EXPECT_EQ(a.counters.buffer_reads, b.counters.buffer_reads);
  EXPECT_EQ(a.counters.xbar_traversals, b.counters.xbar_traversals);
  EXPECT_EQ(a.counters.vc_allocs, b.counters.vc_allocs);
  EXPECT_EQ(a.counters.sa_arbitrations, b.counters.sa_arbitrations);
  EXPECT_EQ(a.counters.link_flits, b.counters.link_flits);
  EXPECT_EQ(a.counters.active_cycles, b.counters.active_cycles);
  EXPECT_EQ(a.counters.gated_cycles, b.counters.gated_cycles);
  EXPECT_EQ(a.counters.waking_cycles, b.counters.waking_cycles);
  EXPECT_EQ(a.counters.wake_events, b.counters.wake_events);
  EXPECT_EQ(a.counters.idle_active_cycles, b.counters.idle_active_cycles);
  EXPECT_EQ(a.counters.flits_corrupted, b.counters.flits_corrupted);
  EXPECT_EQ(a.counters.reroutes, b.counters.reroutes);
  EXPECT_EQ(a.counters.wake_failures, b.counters.wake_failures);
  EXPECT_EQ(a.resilience.retransmissions, b.resilience.retransmissions);
  EXPECT_EQ(a.resilience.timeouts, b.resilience.timeouts);
  EXPECT_EQ(a.resilience.corrupted_packets, b.resilience.corrupted_packets);
  EXPECT_EQ(a.resilience.dropped_packets, b.resilience.dropped_packets);
  EXPECT_EQ(a.resilience.duplicates, b.resilience.duplicates);
  EXPECT_EQ(a.resilience.acks_sent, b.resilience.acks_sent);
  EXPECT_EQ(a.resilience.nacks_sent, b.resilience.nacks_sent);
}

noc::SimResults run_with_threads(int sim_threads, Scheme scheme, bool faults) {
  Rig rig = make_rig(scheme, faults);
  rig.net->set_sim_threads(sim_threads);
  EXPECT_EQ(rig.net->sim_threads(), sim_threads);
  return noc::run_simulation(*rig.net, short_sim(faults));
}

/// The core guarantee, exercised for one network/fault configuration:
/// sim_threads = 2, 4, 8 all reproduce the serial run bit-for-bit.
void check_thread_counts(Scheme scheme, bool faults, const std::string& tag) {
  SCOPED_TRACE(tag);
  const noc::SimResults reference = run_with_threads(1, scheme, faults);
  for (const int n : {2, 4, 8}) {
    SCOPED_TRACE("sim_threads=" + std::to_string(n));
    expect_identical(run_with_threads(n, scheme, faults), reference);
  }
}

// --- bit-identical across thread counts -------------------------------------

TEST(ParallelTick, BitIdenticalSprintRegion) {
  check_thread_counts(Scheme::kSprint, /*faults=*/false, "sprint");
}

TEST(ParallelTick, BitIdenticalWithDynamicGating) {
  check_thread_counts(Scheme::kFullDynamic, /*faults=*/false, "dynamic");
}

TEST(ParallelTick, BitIdenticalWithFaults) {
  check_thread_counts(Scheme::kSprint, /*faults=*/true, "faults");
}

TEST(ParallelTick, BitIdenticalWithFaultsAndDynamicGating) {
  check_thread_counts(Scheme::kFullDynamic, /*faults=*/true, "faults_dyn");
}

// --- tracing -----------------------------------------------------------------

TEST(ParallelTick, BitIdenticalWithTracingActive) {
  // A live trace session samples counters mid-run; it must neither perturb
  // the parallel results nor crash under sharded ticking.  (Trace event
  // *order* within a cycle is not part of the determinism contract — the
  // SimResults are.)
  const noc::SimResults reference =
      run_with_threads(1, Scheme::kSprint, false);

  const std::string path = tmp_path("parallel_trace.json");
  ASSERT_TRUE(trace::begin(path));
  Rig rig = make_rig(Scheme::kSprint, false);
  rig.net->set_sim_threads(4);
  noc::SimConfig sim = short_sim(false);
  sim.trace_sample = 64;
  const noc::SimResults traced = noc::run_simulation(*rig.net, sim);
  EXPECT_GT(trace::event_count(), 0u);
  ASSERT_TRUE(trace::end());

  expect_identical(traced, reference);
  std::remove(path.c_str());
}

// --- checkpoint/restore across thread counts ---------------------------------

TEST(ParallelTick, CheckpointUnderFourThreadsRestoresUnderTwo) {
  // Write a checkpoint mid-measurement while ticking with 4 shards, then
  // restore it into a 2-shard network (and a serial one): the conservative
  // scheduler reset on load_state makes the thread count a pure execution
  // detail, so both must finish bit-identical to the uninterrupted serial
  // run.
  const noc::SimConfig sim = short_sim(false);
  const Cycle cut = 300 + 600;
  const std::string path = tmp_path("parallel_resume.nocsnap");

  const noc::SimResults reference =
      run_with_threads(1, Scheme::kSprint, false);

  Rig first = make_rig(Scheme::kSprint, false);
  first.net->set_sim_threads(4);
  noc::CheckpointConfig stop;
  stop.save_path = path;
  stop.stop_at = cut;
  const noc::SimResults partial =
      noc::run_simulation(*first.net, sim, ckpt_for(first, stop));
  ASSERT_TRUE(partial.interrupted);
  EXPECT_EQ(partial.cycles, cut);

  for (const int n : {2, 1}) {
    SCOPED_TRACE("restore with sim_threads=" + std::to_string(n));
    Rig second = make_rig(Scheme::kSprint, false);
    second.net->set_sim_threads(n);
    noc::CheckpointConfig resume;
    resume.restore_path = path;
    const noc::SimResults resumed =
        noc::run_simulation(*second.net, sim, ckpt_for(second, resume));
    EXPECT_FALSE(resumed.interrupted);
    expect_identical(resumed, reference);
  }
  std::remove(path.c_str());
}

TEST(ParallelTick, FaultedCheckpointRestoresAcrossThreadCounts) {
  const noc::SimConfig sim = short_sim(true);
  const Cycle cut = 300 + 600;
  const std::string path = tmp_path("parallel_resume_faults.nocsnap");

  const noc::SimResults reference = run_with_threads(1, Scheme::kSprint, true);

  Rig first = make_rig(Scheme::kSprint, true);
  first.net->set_sim_threads(2);
  noc::CheckpointConfig stop;
  stop.save_path = path;
  stop.stop_at = cut;
  const noc::SimResults partial =
      noc::run_simulation(*first.net, sim, ckpt_for(first, stop));
  ASSERT_TRUE(partial.interrupted);

  Rig second = make_rig(Scheme::kSprint, true);
  second.net->set_sim_threads(4);
  noc::CheckpointConfig resume;
  resume.restore_path = path;
  const noc::SimResults resumed =
      noc::run_simulation(*second.net, sim, ckpt_for(second, resume));
  EXPECT_FALSE(resumed.interrupted);
  expect_identical(resumed, reference);
  std::remove(path.c_str());
}

// --- API edges ----------------------------------------------------------------

TEST(ParallelTick, ThreadCountClampsToMeshHeight) {
  Rig rig = make_rig(Scheme::kSprint, false);
  rig.net->set_sim_threads(64);  // 8 rows -> at most 8 row-band shards
  EXPECT_EQ(rig.net->sim_threads(), 8);
  rig.net->set_sim_threads(3);   // uneven row split is fine
  EXPECT_EQ(rig.net->sim_threads(), 3);
  expect_identical(noc::run_simulation(*rig.net, short_sim(false)),
                   run_with_threads(1, Scheme::kSprint, false));
}

TEST(ParallelTick, SwitchingThreadCountMidRunStaysDeterministic) {
  // set_sim_threads at a cycle boundary is legal (conservative reset); a
  // run that flips 1 -> 4 -> 2 between bursts matches the all-serial run.
  const auto run_phased = [](const std::vector<int>& threads_per_leg) {
    Rig rig = make_rig(Scheme::kSprint, false);
    rig.net->set_injection_rate(0.15);
    for (const int n : threads_per_leg) {
      rig.net->set_sim_threads(n);
      rig.net->run(500);
    }
    rig.net->set_injection_rate(0.0);
    Cycle budget = 100000;
    while (!rig.net->drained() && budget-- > 0) rig.net->tick();
    EXPECT_TRUE(rig.net->drained());
    return rig.net->total_counters().link_flits;
  };
  EXPECT_EQ(run_phased({1, 4, 2}), run_phased({1, 1, 1}));
}

TEST(ParallelTick, DefaultThreadCountReadsEnvironment) {
  EXPECT_GE(default_sim_thread_count(), 1);
}

// --- drained() fast path -------------------------------------------------------

TEST(ParallelTick, DrainedShortCircuitAgreesWithScan) {
  // drained() short-circuits through the live-activity counters; under
  // NOCS_ASSERT (on in test builds) every fast-path "drained" answer is
  // re-verified against the full O(n) scan, so simply exercising it across
  // load and quiescence — serial and sharded — proves agreement.
  for (const int n : {1, 4}) {
    SCOPED_TRACE("sim_threads=" + std::to_string(n));
    Rig rig = make_rig(Scheme::kSprint, false);
    rig.net->set_sim_threads(n);
    rig.net->set_injection_rate(0.2);
    rig.net->run(400);
    rig.net->set_injection_rate(0.0);
    Cycle budget = 100000;
    while (!rig.net->drained() && budget-- > 0) rig.net->tick();
    EXPECT_TRUE(rig.net->drained());
  }
}

}  // namespace
}  // namespace nocs
