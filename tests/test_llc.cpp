// Tests for the LLC architecture / bypass-ring analysis (Section 3.4).
#include <gtest/gtest.h>

#include <set>

#include "sprint/llc.hpp"

namespace nocs::sprint {
namespace {

TEST(Llc, NonTiledArchitecturesGateFreely) {
  const MeshShape mesh(4, 4);
  for (LlcArchitecture arch :
       {LlcArchitecture::kPrivate, LlcArchitecture::kCentralized,
        LlcArchitecture::kNucaSeparate}) {
    LlcParams p;
    p.arch = arch;
    const LlcModel model(mesh, p);
    for (int level : {1, 4, 16}) {
      const LlcAnalysis a = model.analyze(level);
      EXPECT_TRUE(a.gating_safe_without_support) << to_string(arch);
      EXPECT_EQ(a.added_avg_latency, 0.0);
      EXPECT_EQ(a.bypass_power, 0.0);
    }
  }
}

TEST(Llc, TiledSharedNeedsBypassBelowFullSprint) {
  const MeshShape mesh(4, 4);
  LlcParams p;
  p.arch = LlcArchitecture::kTiledShared;
  const LlcModel model(mesh, p);
  const LlcAnalysis a = model.analyze(4);
  EXPECT_FALSE(a.gating_safe_without_support);
  EXPECT_GT(a.bypass_power, 0.0);
  EXPECT_GT(a.added_avg_latency, 0.0);
  // Full sprint: nothing dark, no bypass needed.
  const LlcAnalysis full = model.analyze(16);
  EXPECT_TRUE(full.gating_safe_without_support);
  EXPECT_EQ(full.dark_access_fraction, 0.0);
}

TEST(Llc, DarkAccessFractionIsInterleavedShare) {
  const MeshShape mesh(4, 4);
  LlcParams p;
  const LlcModel model(mesh, p);
  EXPECT_DOUBLE_EQ(model.analyze(4).dark_access_fraction, 12.0 / 16.0);
  EXPECT_DOUBLE_EQ(model.analyze(12).dark_access_fraction, 4.0 / 16.0);
  EXPECT_DOUBLE_EQ(model.analyze(1).dark_access_fraction, 15.0 / 16.0);
}

TEST(Llc, AddedLatencyShrinksWithLevel) {
  const MeshShape mesh(4, 4);
  const LlcModel model(mesh, LlcParams{});
  double prev = 1e9;
  for (int level : {2, 4, 8, 12, 15}) {
    const double added = model.analyze(level).added_avg_latency;
    EXPECT_LT(added, prev) << level;
    prev = added;
  }
}

TEST(Llc, BypassRoundTripIsOneFullLoop) {
  // Unidirectional ring: request + response always sum to exactly one
  // loop of n segments.
  const MeshShape mesh(4, 4);
  LlcParams p;
  p.ring_hop_cycles = 2;
  const LlcModel model(mesh, p);
  EXPECT_DOUBLE_EQ(model.analyze(4).avg_bypass_round_trip, 16.0 * 2.0);
}

TEST(Llc, RingIsABoustrophedonHamiltonianWalk) {
  const MeshShape mesh(4, 4);
  const LlcModel model(mesh, LlcParams{});
  const auto& ring = model.ring_order();
  ASSERT_EQ(ring.size(), 16u);
  // Every node once.
  std::set<NodeId> unique(ring.begin(), ring.end());
  EXPECT_EQ(unique.size(), 16u);
  // Consecutive ring stops are physically adjacent (one-pitch segments),
  // which is the point of the snake walk.
  for (std::size_t i = 1; i < ring.size(); ++i)
    EXPECT_EQ(manhattan(mesh.coord_of(ring[i - 1]), mesh.coord_of(ring[i])),
              1)
        << "segment " << i;
  // Starts at the master's row, first row left-to-right.
  EXPECT_EQ(ring[0], 0);
  EXPECT_EQ(ring[3], 3);
  EXPECT_EQ(ring[4], 7);  // second row right-to-left
}

TEST(Llc, LatencyScalesWithTrafficFraction) {
  const MeshShape mesh(4, 4);
  LlcParams lo;
  lo.llc_traffic_fraction = 0.2;
  LlcParams hi;
  hi.llc_traffic_fraction = 0.4;
  EXPECT_NEAR(LlcModel(mesh, hi).analyze(4).added_avg_latency,
              2.0 * LlcModel(mesh, lo).analyze(4).added_avg_latency, 1e-12);
}

TEST(Llc, ArchitectureNames) {
  EXPECT_STREQ(to_string(LlcArchitecture::kPrivate), "private");
  EXPECT_STREQ(to_string(LlcArchitecture::kTiledShared), "tiled-shared");
}

TEST(Llc, RejectsBadParams) {
  const MeshShape mesh(4, 4);
  LlcParams p;
  p.llc_traffic_fraction = 1.5;
  EXPECT_DEATH(LlcModel(mesh, p), "precondition");
  const LlcModel ok(mesh, LlcParams{});
  EXPECT_DEATH(ok.analyze(0), "precondition");
  EXPECT_DEATH(ok.analyze(17), "precondition");
}

}  // namespace
}  // namespace nocs::sprint
