// Tests for the sprint-network builders.
#include <gtest/gtest.h>

#include <set>

#include "noc/simulator.hpp"
#include "sprint/network_builder.hpp"
#include "sprint/topology.hpp"

namespace nocs::sprint {
namespace {

noc::NetworkParams params() {
  noc::NetworkParams p;
  p.width = 4;
  p.height = 4;
  return p;
}

TEST(NocSprintingBundle, EndpointsAreAlgorithm1Prefix) {
  const NetworkBundle b = make_noc_sprinting_network(params(), 6, "uniform", 1);
  EXPECT_EQ(b.endpoints, active_set(params().shape(), 6, 0));
  EXPECT_EQ(b.network->endpoints(), b.endpoints);
  EXPECT_STREQ(b.routing->name(), "cdor");
}

TEST(NocSprintingBundle, DarkRegionIsGated) {
  const NetworkBundle b = make_noc_sprinting_network(params(), 4, "uniform", 1);
  const std::set<NodeId> active(b.endpoints.begin(), b.endpoints.end());
  for (NodeId id = 0; id < 16; ++id) {
    const auto state = b.network->router(id).power_state();
    if (active.count(id))
      EXPECT_EQ(state, noc::PowerState::kActive) << id;
    else
      EXPECT_EQ(state, noc::PowerState::kGated) << id;
  }
}

TEST(NocSprintingBundle, SimulatesCleanly) {
  NetworkBundle b = make_noc_sprinting_network(params(), 8, "uniform", 2);
  noc::SimConfig cfg;
  cfg.warmup = 200;
  cfg.measure = 2000;
  cfg.injection_rate = 0.1;
  const noc::SimResults r = run_simulation(*b.network, cfg);
  EXPECT_FALSE(r.saturated);
  EXPECT_GT(r.packets_ejected, 0u);
  // Gated routers never woke: the CDOR guarantee.
  EXPECT_EQ(b.network->total_counters().wake_events, 0u);
}

TEST(FullSprintingBundle, AllRoutersOnXyRouting) {
  const NetworkBundle b =
      make_full_sprinting_network(params(), 4, "uniform", 3);
  EXPECT_STREQ(b.routing->name(), "xy-dor");
  for (NodeId id = 0; id < 16; ++id)
    EXPECT_EQ(b.network->router(id).power_state(), noc::PowerState::kActive);
}

TEST(FullSprintingBundle, RandomMappingIncludesMasterAndIsDistinct) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const NetworkBundle b =
        make_full_sprinting_network(params(), 5, "uniform", seed);
    ASSERT_EQ(b.endpoints.size(), 5u);
    EXPECT_EQ(b.endpoints[0], 0);  // master always included
    std::set<NodeId> unique(b.endpoints.begin(), b.endpoints.end());
    EXPECT_EQ(unique.size(), 5u) << "seed " << seed;
    for (NodeId id : b.endpoints) EXPECT_TRUE(params().shape().valid(id));
  }
}

TEST(FullSprintingBundle, DifferentSeedsDifferentMappings) {
  std::set<std::vector<NodeId>> mappings;
  for (std::uint64_t seed = 0; seed < 10; ++seed)
    mappings.insert(
        make_full_sprinting_network(params(), 6, "uniform", seed).endpoints);
  EXPECT_GT(mappings.size(), 5u);  // overwhelmingly distinct
}

TEST(FullSprintingBundle, SameSeedSameMapping) {
  EXPECT_EQ(make_full_sprinting_network(params(), 6, "uniform", 7).endpoints,
            make_full_sprinting_network(params(), 6, "uniform", 7).endpoints);
}

TEST(Bundles, FullLevelSixteenUsesEveryNode) {
  const NetworkBundle b =
      make_full_sprinting_network(params(), 16, "uniform", 4);
  std::set<NodeId> unique(b.endpoints.begin(), b.endpoints.end());
  EXPECT_EQ(unique.size(), 16u);
}

TEST(Bundles, RejectLevelBelowTwo) {
  EXPECT_DEATH(make_noc_sprinting_network(params(), 1, "uniform", 1),
               "precondition");
  EXPECT_DEATH(make_full_sprinting_network(params(), 1, "uniform", 1),
               "precondition");
}

TEST(Bundles, OtherTrafficKinds) {
  for (const char* kind : {"neighbor", "transpose", "hotspot"}) {
    NetworkBundle b = make_noc_sprinting_network(params(), 8, kind, 9);
    noc::SimConfig cfg;
    cfg.warmup = 100;
    cfg.measure = 1000;
    cfg.injection_rate = 0.05;
    const noc::SimResults r = run_simulation(*b.network, cfg);
    EXPECT_GT(r.packets_ejected, 0u) << kind;
  }
}

}  // namespace
}  // namespace nocs::sprint
