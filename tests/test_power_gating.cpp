// Tests for the gating break-even analysis and dark-node computation.
#include <gtest/gtest.h>

#include "sprint/power_gating.hpp"
#include "sprint/topology.hpp"

namespace nocs::sprint {
namespace {

power::RouterPowerModel table1_router() {
  noc::NetworkParams net;
  return power::RouterPowerModel(
      power::RouterPowerParams::from_network(net));
}

TEST(GatingAnalysis, BreakEvenPositiveAndFinite) {
  const GatingAnalysis a(table1_router(), GatingParams{});
  EXPECT_GT(a.break_even_cycles(), 0.0);
  EXPECT_LT(a.break_even_cycles(), 1e7);
}

TEST(GatingAnalysis, BenefitSignFlipsAtBreakEven) {
  const GatingAnalysis a(table1_router(), GatingParams{});
  const double be = a.break_even_cycles();
  EXPECT_LT(a.gating_benefit(0.5 * be), 0.0);
  EXPECT_NEAR(a.gating_benefit(be), 0.0, 1e-15);
  EXPECT_GT(a.gating_benefit(2.0 * be), 0.0);
}

TEST(GatingAnalysis, BiggerWakeEnergyLongerBreakEven) {
  GatingParams cheap;
  GatingParams costly;
  costly.wake_energy = cheap.wake_energy * 4.0;
  const auto model = table1_router();
  EXPECT_NEAR(GatingAnalysis(model, costly).break_even_cycles(),
              4.0 * GatingAnalysis(model, cheap).break_even_cycles(), 1e-6);
}

TEST(GatingAnalysis, SleepPowerReducesBenefit) {
  GatingParams ideal;
  ideal.sleep_power = 0.0;
  GatingParams leaky;
  leaky.sleep_power = 1e-3;  // 1 mW residual
  const auto model = table1_router();
  EXPECT_GT(GatingAnalysis(model, ideal).gating_benefit(1e5),
            GatingAnalysis(model, leaky).gating_benefit(1e5));
}

TEST(GatingAnalysis, RejectsSleepAboveLeakage) {
  GatingParams bad;
  bad.sleep_power = 1.0;  // more than the router leaks — gating can't help
  EXPECT_DEATH(GatingAnalysis(table1_router(), bad), "precondition");
}

TEST(DarkNodes, ComplementOfActiveSet) {
  const MeshShape mesh(4, 4);
  const auto active = active_set(mesh, 4, 0);  // {0,1,4,5}
  const auto dark = dark_nodes(mesh, active);
  EXPECT_EQ(dark.size(), 12u);
  for (NodeId id : dark) {
    EXPECT_EQ(std::count(active.begin(), active.end(), id), 0);
  }
  // Together they partition the mesh.
  EXPECT_EQ(dark.size() + active.size(),
            static_cast<std::size_t>(mesh.size()));
}

TEST(DarkNodes, EmptyWhenAllActive) {
  const MeshShape mesh(4, 4);
  EXPECT_TRUE(dark_nodes(mesh, mesh.all_nodes()).empty());
}

}  // namespace
}  // namespace nocs::sprint
