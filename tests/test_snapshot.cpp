// Tests for the checkpoint/restore subsystem: Writer/Reader framing,
// snapshot-file corruption detection, per-component round trips, the
// bit-identical-resume guarantee of run_simulation (several cut points,
// faults on and off), and manifest-based sweep resume.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/snapshot.hpp"
#include "common/stats.hpp"
#include "fault/fault_injector.hpp"
#include "noc/parallel_sweep.hpp"
#include "noc/simulator.hpp"
#include "sprint/network_builder.hpp"
#include "sprint/online_adapt.hpp"
#include "thermal/grid.hpp"

namespace nocs {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// --- Writer / Reader framing -----------------------------------------------

TEST(SnapshotWriter, PrimitivesRoundTrip) {
  snapshot::Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.b(true);
  w.b(false);
  w.f64(3.141592653589793);
  w.f64(-0.0);
  w.str("hello snapshot");
  w.str("");

  snapshot::Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.f64(), 3.141592653589793);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.str(), "hello snapshot");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SnapshotWriter, SectionsFrameTheirContent) {
  snapshot::Writer w;
  w.begin_section("outer");
  w.u64(1);
  w.begin_section("inner");
  w.str("x");
  w.end_section();
  w.u64(2);
  w.end_section();

  snapshot::Reader r(w.bytes());
  r.begin_section("outer");
  EXPECT_EQ(r.u64(), 1u);
  r.begin_section("inner");
  EXPECT_EQ(r.str(), "x");
  r.end_section();
  EXPECT_EQ(r.u64(), 2u);
  r.end_section();
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SnapshotReader, UnderflowThrows) {
  snapshot::Writer w;
  w.u32(7);
  snapshot::Reader r(w.bytes());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW(r.u8(), snapshot::SnapshotError);
}

TEST(SnapshotReader, WrongSectionNameThrows) {
  snapshot::Writer w;
  w.begin_section("router");
  w.u64(3);
  w.end_section();
  snapshot::Reader r(w.bytes());
  EXPECT_THROW(r.begin_section("network"), snapshot::SnapshotError);
}

TEST(SnapshotReader, ShortSectionReadThrows) {
  snapshot::Writer w;
  w.begin_section("s");
  w.u64(1);
  w.u64(2);
  w.end_section();
  snapshot::Reader r(w.bytes());
  r.begin_section("s");
  EXPECT_EQ(r.u64(), 1u);
  EXPECT_THROW(r.end_section(), snapshot::SnapshotError);
}

// --- snapshot files: atomic write + corruption detection --------------------

snapshot::Writer small_payload() {
  snapshot::Writer w;
  w.begin_section("test");
  w.u64(0x1122334455667788ULL);
  w.str("payload");
  w.end_section();
  return w;
}

TEST(SnapshotFile, RoundTrips) {
  const std::string path = tmp_path("snap_roundtrip.nocsnap");
  ASSERT_TRUE(snapshot::save_file(path, small_payload()));
  snapshot::Reader r = snapshot::load_file(path);
  r.begin_section("test");
  EXPECT_EQ(r.u64(), 0x1122334455667788ULL);
  EXPECT_EQ(r.str(), "payload");
  r.end_section();
  EXPECT_EQ(r.remaining(), 0u);
  std::remove(path.c_str());
}

TEST(SnapshotFile, MissingFileThrows) {
  EXPECT_THROW(snapshot::load_file(tmp_path("snap_does_not_exist.nocsnap")),
               snapshot::SnapshotError);
}

std::vector<char> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<char> bytes;
  int c;
  while ((c = std::fgetc(f)) != EOF) bytes.push_back(static_cast<char>(c));
  std::fclose(f);
  return bytes;
}

void spew(const std::string& path, const std::vector<char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

TEST(SnapshotFile, BadMagicRejected) {
  const std::string path = tmp_path("snap_badmagic.nocsnap");
  ASSERT_TRUE(snapshot::save_file(path, small_payload()));
  std::vector<char> bytes = slurp(path);
  bytes[0] = 'X';
  spew(path, bytes);
  EXPECT_THROW(snapshot::load_file(path), snapshot::SnapshotError);
  std::remove(path.c_str());
}

TEST(SnapshotFile, PayloadBitFlipRejected) {
  const std::string path = tmp_path("snap_bitflip.nocsnap");
  ASSERT_TRUE(snapshot::save_file(path, small_payload()));
  std::vector<char> bytes = slurp(path);
  // Header is magic(8) + version(4) + length(8) + checksum(8) = 28 bytes;
  // flip one bit well inside the payload.
  ASSERT_GT(bytes.size(), 40u);
  bytes[36] = static_cast<char>(bytes[36] ^ 0x10);
  spew(path, bytes);
  EXPECT_THROW(snapshot::load_file(path), snapshot::SnapshotError);
  std::remove(path.c_str());
}

TEST(SnapshotFile, TruncationRejected) {
  const std::string path = tmp_path("snap_truncated.nocsnap");
  ASSERT_TRUE(snapshot::save_file(path, small_payload()));
  std::vector<char> bytes = slurp(path);
  bytes.resize(bytes.size() - 5);
  spew(path, bytes);
  EXPECT_THROW(snapshot::load_file(path), snapshot::SnapshotError);
  std::remove(path.c_str());
}

// --- component round trips --------------------------------------------------

TEST(SnapshotComponents, RngStateRoundTrips) {
  Rng a(12345);
  for (int i = 0; i < 100; ++i) (void)a.next();
  Rng b(999);
  b.set_state(a.state());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SnapshotComponents, RunningStatRoundTrips) {
  RunningStat s;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) s.add(rng.uniform() * 100.0);

  snapshot::Writer w;
  s.save_state(w);
  RunningStat restored;
  snapshot::Reader r(w.bytes());
  restored.load_state(r);

  EXPECT_EQ(restored.count(), s.count());
  EXPECT_EQ(restored.mean(), s.mean());
  EXPECT_EQ(restored.variance(), s.variance());
  EXPECT_EQ(restored.min(), s.min());
  EXPECT_EQ(restored.max(), s.max());

  // Continuing both must stay bit-identical.
  s.add(42.5);
  restored.add(42.5);
  EXPECT_EQ(restored.mean(), s.mean());
  EXPECT_EQ(restored.variance(), s.variance());
}

TEST(SnapshotComponents, HistogramRoundTrips) {
  Histogram h(1.0, 64);
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) h.add(rng.uniform() * 500.0);

  snapshot::Writer w;
  h.save_state(w);
  Histogram restored(1.0, 64);
  snapshot::Reader r(w.bytes());
  restored.load_state(r);

  EXPECT_EQ(restored.total(), h.total());
  EXPECT_EQ(restored.quantile(0.5), h.quantile(0.5));
  EXPECT_EQ(restored.quantile(0.99), h.quantile(0.99));
  EXPECT_EQ(restored.max_value(), h.max_value());
}

TEST(SnapshotComponents, HistogramShapeMismatchThrows) {
  Histogram h(1.0, 64);
  h.add(3.0);
  snapshot::Writer w;
  h.save_state(w);
  Histogram other(1.0, 32);  // different bin count
  snapshot::Reader r(w.bytes());
  EXPECT_THROW(other.load_state(r), snapshot::SnapshotError);
}

TEST(SnapshotComponents, TemperatureFieldRoundTrips) {
  thermal::TemperatureField field(8, 6, 1, 318.0);
  Rng rng(11);
  for (double& t : field.raw()) t = 300.0 + rng.uniform() * 60.0;

  snapshot::Writer w;
  field.save_state(w);
  thermal::TemperatureField restored(8, 6, 1, 0.0);
  snapshot::Reader r(w.bytes());
  restored.load_state(r);

  ASSERT_EQ(restored.raw().size(), field.raw().size());
  for (std::size_t i = 0; i < field.raw().size(); ++i)
    EXPECT_EQ(restored.raw()[i], field.raw()[i]);
  EXPECT_EQ(restored.peak(), field.peak());
  EXPECT_EQ(restored.average(), field.average());
}

TEST(SnapshotComponents, TemperatureFieldDimensionMismatchThrows) {
  thermal::TemperatureField field(8, 6, 1, 318.0);
  snapshot::Writer w;
  field.save_state(w);
  thermal::TemperatureField other(6, 8, 1, 318.0);  // transposed grid
  snapshot::Reader r(w.bytes());
  EXPECT_THROW(other.load_state(r), snapshot::SnapshotError);
}

TEST(SnapshotComponents, OnlineControllerRoundTrips) {
  sprint::OnlineLevelController ctrl(16, /*start_level=*/2);
  // Drive the hill climber into a mid-search state.
  ctrl.observe(1.00);  // baseline at level 2
  ctrl.observe(0.80);  // probe up measured faster
  ctrl.observe(0.70);  // keep climbing

  snapshot::Writer w;
  ctrl.save_state(w);
  sprint::OnlineLevelController restored(16, 1);
  snapshot::Reader r(w.bytes());
  restored.load_state(r);

  EXPECT_EQ(restored.next_level(), ctrl.next_level());
  EXPECT_EQ(restored.converged(), ctrl.converged());
  EXPECT_EQ(restored.n_max(), ctrl.n_max());

  // Identical observations after restore must keep the two controllers in
  // lock-step — that is what makes adaptive campaigns resumable.
  for (double t : {0.65, 0.72, 0.68, 0.71}) {
    EXPECT_EQ(restored.next_level(), ctrl.next_level());
    ctrl.observe(t);
    restored.observe(t);
  }
  EXPECT_EQ(restored.next_level(), ctrl.next_level());
  EXPECT_EQ(restored.converged(), ctrl.converged());
}

// --- bit-identical resume ----------------------------------------------------

fault::FaultParams storm_params() {
  fault::FaultParams fp;
  fp.enabled = true;
  fp.seed = 42;
  fp.flip_rate = 0.002;
  fp.drop_rate = 0.01;
  fp.link_down_rate = 0.0005;
  fp.link_down_cycles = 30;
  fp.ack_timeout = 200;
  fp.max_backoff = 2000;
  return fp;
}

struct Rig {
  std::unique_ptr<noc::RoutingFunction> routing;
  std::unique_ptr<noc::Network> net;
  std::unique_ptr<fault::FaultInjector> injector;
};

/// A fig09-style configuration: 4-core NoC-sprinting region on the Table 1
/// mesh, uniform traffic, deterministic seed.
Rig make_rig(bool faults, std::uint64_t seed = 7) {
  noc::NetworkParams params;
  auto bundle =
      sprint::make_noc_sprinting_network(params, 4, "uniform", seed);
  Rig rig;
  rig.routing = std::move(bundle.routing);
  rig.net = std::move(bundle.network);
  if (faults) {
    rig.injector =
        std::make_unique<fault::FaultInjector>(params.shape(), storm_params());
    const noc::ProtectionParams prot = storm_params().protection();
    rig.net->enable_resilience(rig.injector.get(), &prot);
  }
  return rig;
}

noc::SimConfig short_sim(bool faults) {
  noc::SimConfig sim;
  sim.warmup = 300;
  sim.measure = 1200;
  sim.drain_max = 20000;
  sim.injection_rate = 0.15;
  if (faults) sim.watchdog_cycles = 50000;
  return sim;
}

noc::CheckpointConfig ckpt_for(Rig& rig, noc::CheckpointConfig c) {
  if (rig.injector != nullptr)
    c.extras.emplace_back("fault", rig.injector.get());
  return c;
}

void expect_identical(const noc::SimResults& a, const noc::SimResults& b) {
  EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
  EXPECT_EQ(a.avg_network_latency, b.avg_network_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.packets_ejected, b.packets_ejected);
  EXPECT_EQ(a.accepted_rate, b.accepted_rate);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.histogram_saturated, b.histogram_saturated);
  EXPECT_EQ(a.max_packet_latency, b.max_packet_latency);
  EXPECT_EQ(a.hung, b.hung);
  EXPECT_EQ(a.interrupted, b.interrupted);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.counters.buffer_writes, b.counters.buffer_writes);
  EXPECT_EQ(a.counters.buffer_reads, b.counters.buffer_reads);
  EXPECT_EQ(a.counters.xbar_traversals, b.counters.xbar_traversals);
  EXPECT_EQ(a.counters.vc_allocs, b.counters.vc_allocs);
  EXPECT_EQ(a.counters.sa_arbitrations, b.counters.sa_arbitrations);
  EXPECT_EQ(a.counters.link_flits, b.counters.link_flits);
  EXPECT_EQ(a.counters.active_cycles, b.counters.active_cycles);
  EXPECT_EQ(a.counters.gated_cycles, b.counters.gated_cycles);
  EXPECT_EQ(a.counters.waking_cycles, b.counters.waking_cycles);
  EXPECT_EQ(a.counters.wake_events, b.counters.wake_events);
  EXPECT_EQ(a.counters.idle_active_cycles, b.counters.idle_active_cycles);
  EXPECT_EQ(a.counters.flits_corrupted, b.counters.flits_corrupted);
  EXPECT_EQ(a.counters.reroutes, b.counters.reroutes);
  EXPECT_EQ(a.counters.wake_failures, b.counters.wake_failures);
  EXPECT_EQ(a.resilience.retransmissions, b.resilience.retransmissions);
  EXPECT_EQ(a.resilience.timeouts, b.resilience.timeouts);
  EXPECT_EQ(a.resilience.corrupted_packets, b.resilience.corrupted_packets);
  EXPECT_EQ(a.resilience.dropped_packets, b.resilience.dropped_packets);
  EXPECT_EQ(a.resilience.duplicates, b.resilience.duplicates);
  EXPECT_EQ(a.resilience.acks_sent, b.resilience.acks_sent);
  EXPECT_EQ(a.resilience.nacks_sent, b.resilience.nacks_sent);
}

/// The core guarantee: run to `cut`, checkpoint, restore into a freshly
/// built network, continue — the final results must be bit-identical to
/// the run that never stopped.
void check_resume_at(Cycle cut, bool faults, const std::string& tag) {
  SCOPED_TRACE(tag);
  const noc::SimConfig sim = short_sim(faults);
  const std::string path = tmp_path("resume_" + tag + ".nocsnap");

  Rig uninterrupted = make_rig(faults);
  const noc::SimResults reference =
      noc::run_simulation(*uninterrupted.net, sim);

  Rig first = make_rig(faults);
  noc::CheckpointConfig stop;
  stop.save_path = path;
  stop.stop_at = cut;
  const noc::SimResults partial =
      noc::run_simulation(*first.net, sim, ckpt_for(first, stop));
  ASSERT_TRUE(partial.interrupted);
  EXPECT_EQ(partial.cycles, cut);

  Rig second = make_rig(faults);
  noc::CheckpointConfig resume;
  resume.restore_path = path;
  const noc::SimResults resumed =
      noc::run_simulation(*second.net, sim, ckpt_for(second, resume));
  EXPECT_FALSE(resumed.interrupted);
  expect_identical(resumed, reference);
  std::remove(path.c_str());
}

TEST(SnapshotResume, BitIdenticalFromWarmupCut) {
  check_resume_at(150, /*faults=*/false, "warmup");
}

TEST(SnapshotResume, BitIdenticalFromMidMeasureCut) {
  check_resume_at(300 + 600, /*faults=*/false, "measure");
}

TEST(SnapshotResume, BitIdenticalFromDrainCut) {
  check_resume_at(300 + 1200 + 1, /*faults=*/false, "drain");
}

TEST(SnapshotResume, BitIdenticalWithFaultsFromWarmupCut) {
  check_resume_at(150, /*faults=*/true, "faults_warmup");
}

TEST(SnapshotResume, BitIdenticalWithFaultsFromMidMeasureCut) {
  check_resume_at(300 + 600, /*faults=*/true, "faults_measure");
}

TEST(SnapshotResume, BitIdenticalWithFaultsFromDrainCut) {
  check_resume_at(300 + 1200 + 1, /*faults=*/true, "faults_drain");
}

TEST(SnapshotResume, EmptyCheckpointConfigMatchesPlainRun) {
  const noc::SimConfig sim = short_sim(false);
  Rig a = make_rig(false);
  Rig b = make_rig(false);
  expect_identical(noc::run_simulation(*a.net, sim),
                   noc::run_simulation(*b.net, sim, noc::CheckpointConfig{}));
}

TEST(SnapshotResume, PeriodicAutosaveRestoresToIdenticalEnd) {
  // Run to completion with autosave; the surviving file is the last
  // periodic checkpoint.  Restoring it and finishing must land on the
  // same results as the uninterrupted run.
  const noc::SimConfig sim = short_sim(false);
  const std::string path = tmp_path("autosave.nocsnap");

  Rig a = make_rig(false);
  noc::CheckpointConfig autosave;
  autosave.save_path = path;
  autosave.every = 500;
  const noc::SimResults reference =
      noc::run_simulation(*a.net, sim, autosave);
  EXPECT_FALSE(reference.interrupted);

  Rig b = make_rig(false);
  noc::CheckpointConfig resume;
  resume.restore_path = path;
  const noc::SimResults resumed = noc::run_simulation(*b.net, sim, resume);
  expect_identical(resumed, reference);
  std::remove(path.c_str());
}

TEST(SnapshotResume, MismatchedSimConfigRejected) {
  noc::SimConfig sim = short_sim(false);
  const std::string path = tmp_path("mismatch.nocsnap");

  Rig a = make_rig(false);
  noc::CheckpointConfig stop;
  stop.save_path = path;
  stop.stop_at = 400;
  (void)noc::run_simulation(*a.net, sim, stop);

  Rig b = make_rig(false);
  noc::CheckpointConfig resume;
  resume.restore_path = path;
  sim.measure += 1;  // not the config the checkpoint was taken under
  EXPECT_THROW(noc::run_simulation(*b.net, sim, resume),
               snapshot::SnapshotError);
  std::remove(path.c_str());
}

TEST(SnapshotResume, MismatchedNetworkRejected) {
  const noc::SimConfig sim = short_sim(false);
  const std::string path = tmp_path("mismatch_net.nocsnap");

  Rig a = make_rig(false);
  noc::CheckpointConfig stop;
  stop.save_path = path;
  stop.stop_at = 400;
  (void)noc::run_simulation(*a.net, sim, stop);

  // An 8-core region has different endpoints than the checkpointed 4-core
  // run; the fingerprint check must refuse to load the state on top.
  noc::NetworkParams params;
  auto bundle = sprint::make_noc_sprinting_network(params, 8, "uniform", 7);
  noc::CheckpointConfig resume;
  resume.restore_path = path;
  EXPECT_THROW(noc::run_simulation(*bundle.network, sim, resume),
               snapshot::SnapshotError);
  std::remove(path.c_str());
}

TEST(SnapshotResume, MissingExtraComponentRejected) {
  // A checkpoint taken with a fault injector cannot be restored without
  // one (the extras section would be left unread).
  const noc::SimConfig sim = short_sim(true);
  const std::string path = tmp_path("missing_extra.nocsnap");

  Rig a = make_rig(true);
  noc::CheckpointConfig stop;
  stop.save_path = path;
  stop.stop_at = 400;
  (void)noc::run_simulation(*a.net, sim, ckpt_for(a, stop));

  Rig b = make_rig(true);
  noc::CheckpointConfig resume;
  resume.restore_path = path;  // extras deliberately left empty
  EXPECT_THROW(noc::run_simulation(*b.net, sim, resume),
               snapshot::SnapshotError);
  std::remove(path.c_str());
}

// --- resumable sweeps --------------------------------------------------------

noc::SweepRunner tiny_runner(int* calls = nullptr) {
  return [calls](const noc::SweepTask& task) {
    if (calls != nullptr) ++*calls;
    auto b = sprint::make_noc_sprinting_network(noc::NetworkParams{}, 4,
                                                "uniform", task.seed);
    noc::SimConfig sim;
    sim.warmup = 100;
    sim.measure = 400;
    sim.injection_rate = task.injection_rate;
    return noc::run_simulation(*b.network, sim);
  };
}

TEST(SweepResume, ManifestRecordsAndReplays) {
  const std::string path = tmp_path("sweep_manifest.json");
  std::remove(path.c_str());
  const std::vector<double> rates = {0.05, 0.1, 0.15};
  const std::uint64_t seed = 21;
  const std::string fp = noc::sweep_fingerprint(rates, seed);

  const auto plain =
      noc::parallel_sweep_injection(tiny_runner(), rates, seed, 1);

  {
    snapshot::TaskManifest manifest(path, fp);
    int calls = 0;
    const auto first = noc::resumable_sweep_injection(
        tiny_runner(&calls), rates, seed, &manifest, 1);
    EXPECT_EQ(calls, 3);
    for (std::size_t i = 0; i < rates.size(); ++i)
      expect_identical(first[i].results, plain[i].results);
  }

  // A fresh process re-running the same sweep replays every task from the
  // manifest without calling the runner.
  {
    snapshot::TaskManifest manifest(path, fp);
    EXPECT_EQ(manifest.completed_count(), 3u);
    int calls = 0;
    const auto replayed = noc::resumable_sweep_injection(
        tiny_runner(&calls), rates, seed, &manifest, 1);
    EXPECT_EQ(calls, 0);
    for (std::size_t i = 0; i < rates.size(); ++i)
      expect_identical(replayed[i].results, plain[i].results);
  }
  std::remove(path.c_str());
}

TEST(SweepResume, PartialManifestRunsOnlyMissingTasks) {
  const std::string path = tmp_path("sweep_partial.json");
  std::remove(path.c_str());
  const std::vector<double> rates = {0.05, 0.1, 0.15, 0.2};
  const std::uint64_t seed = 22;
  const std::string fp = noc::sweep_fingerprint(rates, seed);

  // Simulate an interrupted sweep: only tasks 0 and 2 completed.
  {
    snapshot::TaskManifest manifest(path, fp);
    const noc::SweepRunner run = tiny_runner();
    manifest.record(0, to_json(run({0, rates[0], task_seed(seed, 0)})));
    manifest.record(2, to_json(run({2, rates[2], task_seed(seed, 2)})));
  }

  snapshot::TaskManifest manifest(path, fp);
  int calls = 0;
  const auto points = noc::resumable_sweep_injection(
      tiny_runner(&calls), rates, seed, &manifest, 1);
  EXPECT_EQ(calls, 2);  // tasks 1 and 3 only
  EXPECT_EQ(manifest.completed_count(), 4u);

  const auto plain =
      noc::parallel_sweep_injection(tiny_runner(), rates, seed, 1);
  for (std::size_t i = 0; i < rates.size(); ++i)
    expect_identical(points[i].results, plain[i].results);
  std::remove(path.c_str());
}

TEST(SweepResume, FingerprintMismatchStartsFresh) {
  const std::string path = tmp_path("sweep_fingerprint.json");
  std::remove(path.c_str());
  {
    snapshot::TaskManifest manifest(path, "fingerprint-a");
    manifest.record(0, json::Value::object());
  }
  snapshot::TaskManifest manifest(path, "fingerprint-b");
  EXPECT_EQ(manifest.completed_count(), 0u);
  EXPECT_FALSE(manifest.completed(0));
  std::remove(path.c_str());
}

TEST(SweepResume, DisabledManifestDelegatesToPlainSweep) {
  const std::vector<double> rates = {0.05, 0.1};
  const std::uint64_t seed = 23;
  snapshot::TaskManifest disabled;
  int calls = 0;
  const auto points = noc::resumable_sweep_injection(
      tiny_runner(&calls), rates, seed, &disabled, 1);
  EXPECT_EQ(calls, 2);
  const auto plain =
      noc::parallel_sweep_injection(tiny_runner(), rates, seed, 1);
  for (std::size_t i = 0; i < rates.size(); ++i)
    expect_identical(points[i].results, plain[i].results);
}

TEST(SweepResume, SimResultsJsonRoundTripIsExact) {
  const auto points = noc::parallel_sweep_injection(
      tiny_runner(), {0.18}, /*base_seed=*/31, 1);
  const noc::SimResults& r = points[0].results;
  expect_identical(noc::sim_results_from_json(noc::to_json(r)), r);
}

// --- append-only record log (the serve ledger's framing) --------------------

std::vector<std::string> record_strings(const snapshot::RecordScan& scan) {
  std::vector<std::string> out;
  for (const auto& bytes : scan.records)
    out.emplace_back(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
  return out;
}

TEST(RecordLog, AppendsAndScansBack) {
  const std::string path = tmp_path("records_roundtrip.nsrl");
  std::remove(path.c_str());
  // Missing file: an empty, undamaged log (first daemon start).
  const snapshot::RecordScan empty = snapshot::scan_records(path);
  EXPECT_FALSE(empty.damaged);
  EXPECT_TRUE(empty.records.empty());
  EXPECT_EQ(empty.valid_bytes, 0u);

  const std::vector<std::string> payloads = {"{\"a\":1}", "", "x",
                                             std::string(5000, 'z')};
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  for (const std::string& p : payloads)
    ASSERT_TRUE(snapshot::append_record(
        f, reinterpret_cast<const std::uint8_t*>(p.data()), p.size()));
  std::fclose(f);

  const snapshot::RecordScan scan = snapshot::scan_records(path);
  EXPECT_FALSE(scan.damaged) << scan.damage;
  EXPECT_EQ(record_strings(scan), payloads);
  std::remove(path.c_str());
}

TEST(RecordLog, TruncatedTailYieldsValidPrefix) {
  const std::string path = tmp_path("records_truncated.nsrl");
  std::remove(path.c_str());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const std::string keep = "{\"keep\":true}";
  ASSERT_TRUE(snapshot::append_record(
      f, reinterpret_cast<const std::uint8_t*>(keep.data()), keep.size()));
  std::fclose(f);
  const std::size_t clean_size = snapshot::scan_records(path).valid_bytes;

  // kill -9 mid-append: header promises more payload than the file holds.
  f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const std::uint32_t magic = snapshot::kRecordMagic;
  const std::uint64_t len = 400;
  std::fwrite(&magic, sizeof magic, 1, f);
  std::fwrite(&len, sizeof len, 1, f);
  std::fwrite("short", 1, 5, f);
  std::fclose(f);

  const snapshot::RecordScan scan = snapshot::scan_records(path);
  EXPECT_TRUE(scan.damaged);
  EXPECT_FALSE(scan.damage.empty());
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(record_strings(scan).front(), keep);
  // valid_bytes is the truncation point that makes the file clean again.
  EXPECT_EQ(scan.valid_bytes, clean_size);
  std::remove(path.c_str());
}

TEST(RecordLog, CorruptPayloadByteStopsTheScanThere) {
  const std::string path = tmp_path("records_bitflip.nsrl");
  std::remove(path.c_str());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  for (const char* p : {"first", "second", "third"})
    ASSERT_TRUE(snapshot::append_record(
        f, reinterpret_cast<const std::uint8_t*>(p), std::strlen(p)));
  std::fclose(f);

  // Flip one byte inside the *last* record's payload.
  f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -2, SEEK_END);
  std::fputc('X', f);
  std::fclose(f);

  const snapshot::RecordScan scan = snapshot::scan_records(path);
  EXPECT_TRUE(scan.damaged);
  EXPECT_EQ(record_strings(scan),
            (std::vector<std::string>{"first", "second"}));
  std::remove(path.c_str());
}

// --- lenient manifest loading -----------------------------------------------

TEST(ManifestRecovery, TruncatedManifestRecoversCompletePrefix) {
  const std::string path = tmp_path("manifest_truncated.json");
  std::remove(path.c_str());
  const std::vector<double> rates = {0.05, 0.1, 0.15};
  const std::uint64_t seed = 33;
  const std::string fp = noc::sweep_fingerprint(rates, seed);
  {
    snapshot::TaskManifest manifest(path, fp);
    noc::resumable_sweep_injection(tiny_runner(), rates, seed, &manifest, 1);
  }
  // Chop the file mid-way through the last completed entry — a half-
  // written copy left behind by a dying process.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  const std::size_t cut = text.find("\"2\"");
  ASSERT_NE(cut, std::string::npos);
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(text.data(), 1, cut + 2, f);
  std::fclose(f);

  // Loading must not abort: entries 0 and 1 are salvaged, only the torn
  // entry 2 is re-run.
  snapshot::TaskManifest manifest(path, fp);
  EXPECT_EQ(manifest.completed_count(), 2u);
  EXPECT_TRUE(manifest.completed(0));
  EXPECT_TRUE(manifest.completed(1));
  EXPECT_FALSE(manifest.completed(2));
  int calls = 0;
  const auto points = noc::resumable_sweep_injection(
      tiny_runner(&calls), rates, seed, &manifest, 1);
  EXPECT_EQ(calls, 1);
  const auto plain =
      noc::parallel_sweep_injection(tiny_runner(), rates, seed, 1);
  for (std::size_t i = 0; i < rates.size(); ++i)
    expect_identical(points[i].results, plain[i].results);
  std::remove(path.c_str());
}

TEST(ManifestRecovery, GarbageManifestStartsFreshInsteadOfAborting) {
  const std::string path = tmp_path("manifest_garbage.json");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"magic\": \"nocs-sweep-manifest\", \"ver", f);
  std::fclose(f);
  const std::vector<double> rates = {0.05, 0.1};
  snapshot::TaskManifest manifest(path, noc::sweep_fingerprint(rates, 34));
  EXPECT_EQ(manifest.completed_count(), 0u);
  int calls = 0;
  noc::resumable_sweep_injection(tiny_runner(&calls), rates, 34, &manifest,
                                 1);
  EXPECT_EQ(calls, 2);
  std::remove(path.c_str());
}

TEST(ManifestRecovery, PrefixOfOtherFingerprintIsNotSalvaged) {
  const std::string path = tmp_path("manifest_wrong_fp.json");
  std::remove(path.c_str());
  const std::vector<double> rates = {0.05, 0.1};
  {
    snapshot::TaskManifest manifest(path,
                                    noc::sweep_fingerprint(rates, 35));
    noc::resumable_sweep_injection(tiny_runner(), rates, 35, &manifest, 1);
  }
  // Truncate so the strict parse fails, then load under a *different*
  // fingerprint: recovery must refuse foreign task results.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(text.data(), 1, text.size() - 4, f);
  std::fclose(f);
  snapshot::TaskManifest manifest(path, noc::sweep_fingerprint(rates, 36));
  EXPECT_EQ(manifest.completed_count(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nocs
