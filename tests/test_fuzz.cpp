// Randomized configuration fuzzing: flit conservation and drain
// invariants must hold for every random combination of mesh shape, VC
// structure, pipeline depth, message classes, traffic pattern, load, and
// sprint level.  A single violated invariant aborts inside the simulator
// (contract checks) or fails the conservation equations here.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_injector.hpp"
#include "mem/mem_subsystem.hpp"
#include "mem/tile_driver.hpp"
#include "noc/routing.hpp"
#include "noc/simulator.hpp"
#include "serve/protocol.hpp"
#include "sprint/network_builder.hpp"

namespace nocs {
namespace {

struct FuzzCase {
  noc::NetworkParams params;
  std::string traffic;
  double rate;
  int level;      // 0 = full network, no sprint
  bool protocol;
  std::uint64_t seed;
};

FuzzCase random_case(Rng& rng) {
  FuzzCase c;
  c.params.width = rng.uniform_range(2, 6);
  c.params.height = rng.uniform_range(1, 5);
  if (c.params.width * c.params.height < 4) c.params.height += 2;
  c.params.num_classes = rng.bernoulli(0.4) ? 2 : 1;
  c.params.num_vcs = c.params.num_classes * rng.uniform_range(1, 3);
  c.params.vc_depth = rng.uniform_range(1, 6);
  c.params.packet_length = rng.uniform_range(1, 8);
  c.params.pipeline_stages = rng.bernoulli(0.5) ? 3 : 5;
  c.params.link_latency = rng.uniform_range(1, 3);
  const char* kinds[] = {"uniform", "neighbor", "transpose",
                         "bitcomp", "hotspot", "shuffle"};
  c.traffic = kinds[rng.uniform_int(6)];
  c.rate = 0.02 + 0.18 * rng.uniform();
  c.level = rng.bernoulli(0.5)
                ? rng.uniform_range(2, c.params.num_nodes())
                : 0;
  c.protocol = c.params.num_classes == 2 && rng.bernoulli(0.5);
  c.seed = rng.next();
  return c;
}

class Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(Fuzz, ConservationAndDrainHold) {
  Rng rng(0xabcdef00u + static_cast<std::uint64_t>(GetParam()));
  const FuzzCase c = random_case(rng);
  SCOPED_TRACE(::testing::Message()
               << c.params.width << "x" << c.params.height << " vcs="
               << c.params.num_vcs << "/" << c.params.num_classes
               << " depth=" << c.params.vc_depth << " pkt="
               << c.params.packet_length << " pipe="
               << c.params.pipeline_stages << " traffic=" << c.traffic
               << " rate=" << c.rate << " level=" << c.level
               << " protocol=" << c.protocol);

  std::unique_ptr<noc::RoutingFunction> routing;
  std::unique_ptr<noc::Network> net;
  if (c.level > 0) {
    auto bundle = sprint::make_noc_sprinting_network(c.params, c.level,
                                                     c.traffic, c.seed);
    routing = std::move(bundle.routing);
    net = std::move(bundle.network);
  } else {
    routing = std::make_unique<noc::XyRouting>();
    net = std::make_unique<noc::Network>(c.params, routing.get());
    net->set_endpoints(c.params.shape().all_nodes(),
                       noc::make_traffic(c.traffic, c.params.num_nodes()));
    net->set_seed(c.seed);
  }
  if (c.protocol) net->set_request_reply(1, c.params.packet_length);

  net->set_injection_rate(c.rate);
  net->run(3000);
  net->set_injection_rate(0.0);
  bool drained = false;
  for (int i = 0; i < 200000; ++i) {
    net->tick();
    if (net->drained()) {
      drained = true;
      break;
    }
  }
  ASSERT_TRUE(drained) << "deadlock/livelock";

  const noc::RouterCounters counters = net->total_counters();
  EXPECT_EQ(counters.buffer_writes, counters.buffer_reads);
  EXPECT_EQ(counters.buffer_reads, counters.xbar_traversals);

  std::uint64_t ejected = 0, injected = 0;
  for (NodeId id = 0; id < net->num_nodes(); ++id) {
    ejected += net->ni(id).total_ejected_flits();
    // Generated packet lengths vary in protocol mode; count flits via the
    // conservation identity instead of recomputing lengths.
    injected += net->ni(id).total_generated();
  }
  EXPECT_EQ(counters.xbar_traversals, counters.link_flits + ejected);
  if (!c.protocol) {
    EXPECT_EQ(ejected,
              injected * static_cast<std::uint64_t>(c.params.packet_length));
  } else {
    // requests are 1 flit, replies packet_length; replies == requests.
    EXPECT_EQ(injected % 2, 0u);
    EXPECT_EQ(ejected,
              (injected / 2) *
                  (1u + static_cast<std::uint64_t>(c.params.packet_length)));
  }
}

INSTANTIATE_TEST_SUITE_P(Random, Fuzz, ::testing::Range(0, 40));

// Memory-traffic fuzzing: random tile schedules replayed through random
// controller placements with multicast on or off must always run to
// completion (no protocol deadlock between request and reply classes, no
// stuck phase barrier) and leave the network and every DRAM queue empty.
class MemTrafficFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MemTrafficFuzz, AlwaysCompletesAndDrainsClean) {
  Rng rng(0x3e3d0000u + static_cast<std::uint64_t>(GetParam()));

  noc::NetworkParams p;
  p.width = rng.uniform_range(2, 5);
  p.height = rng.uniform_range(2, 5);
  p.num_classes = 2;
  p.num_vcs = 2 * rng.uniform_range(1, 3);
  p.vc_depth = rng.uniform_range(1, 5);
  p.packet_length = rng.uniform_range(2, 8);

  mem::MemParams mp;
  mp.ctrls = rng.uniform_range(1, 5);
  const mem::MemPlacement placements[] = {mem::MemPlacement::kInterleave,
                                          mem::MemPlacement::kNearest,
                                          mem::MemPlacement::kEdges};
  mp.placement = placements[rng.uniform_int(3)];
  mp.bandwidth = rng.uniform_range(1, 5);
  mp.access_latency = rng.uniform_range(1, 81);
  mp.reply_length = rng.uniform_range(1, 9);
  // Unbounded queue: every request must be served, none rejected.
  mp.queue_capacity = 0;

  // Random schedule: 1-3 layers, each phase 0-200 flits/cycles.
  std::string spec;
  const int layers = rng.uniform_range(1, 4);
  for (int l = 0; l < layers; ++l) {
    if (l > 0) spec += '/';
    spec += "f" + std::to_string(rng.uniform_int(200));
    spec += ",w" + std::to_string(rng.uniform_int(200));
    spec += ",c" + std::to_string(rng.uniform_int(200));
    spec += ",a" + std::to_string(rng.uniform_int(200));
    spec += ",b" + std::to_string(rng.uniform_int(200));
  }
  mem::TileSchedule sched;
  try {
    sched = mem::TileSchedule::parse(spec);
  } catch (const std::invalid_argument&) {
    GTEST_SKIP() << "all-zero schedule " << spec;  // rare and uninteresting
  }

  // Random contiguous group partition over all nodes.
  const int num_nodes = p.num_nodes();
  const int num_groups = rng.uniform_range(1, std::min(num_nodes, 4) + 1);
  std::vector<std::vector<NodeId>> groups(
      static_cast<std::size_t>(num_groups));
  for (NodeId id = 0; id < num_nodes; ++id)
    groups[static_cast<std::size_t>(id % num_groups)].push_back(id);

  const bool multicast = rng.bernoulli(0.5);
  const int threads = rng.bernoulli(0.3) ? 4 : 1;

  SCOPED_TRACE(::testing::Message()
               << p.width << "x" << p.height << " ctrls=" << mp.ctrls
               << " placement=" << mem::to_string(mp.placement)
               << " bw=" << mp.bandwidth << " lat=" << mp.access_latency
               << " reply=" << mp.reply_length << " groups=" << num_groups
               << " mcast=" << multicast << " threads=" << threads
               << " sched=" << spec);

  noc::XyRouting xy;
  noc::Network net(p, &xy);
  if (threads > 1) net.set_sim_threads(threads);
  mem::MemSubsystem mem_sys(net, mp);
  mem::TileTransferDriver driver(net, mem_sys, sched, groups,
                                 {.multicast = multicast,
                                  .chunk_flits = rng.uniform_int(2) == 0
                                                     ? 0
                                                     : rng.uniform_range(2, 9)});
  driver.install();
  const Cycle limit = 2'000'000;
  while (!driver.done() && net.now() < limit) net.tick();
  ASSERT_TRUE(driver.done()) << "deadlock/livelock: stuck at layer "
                             << driver.current_layer();
  EXPECT_TRUE(net.drained());
  EXPECT_TRUE(mem_sys.idle());

  const mem::MemCounters mc = mem_sys.total_counters();
  EXPECT_EQ(mc.rejected, 0u);
  EXPECT_EQ(mc.reads, driver.counters().dram_reads);
  EXPECT_EQ(mc.writes, driver.counters().dram_writes);
  EXPECT_EQ(mc.replies, mc.reads + mc.writes);
  EXPECT_EQ(driver.counters().layers_done,
            static_cast<std::uint64_t>(sched.layers.size()));
}

INSTANTIATE_TEST_SUITE_P(RandomMem, MemTrafficFuzz, ::testing::Range(0, 30));

// Fault fuzzing: random configurations crossed with random (moderate)
// fault schedules.  Whatever the combination, the run must terminate (no
// hang — watchdog-checked), lose zero measured packets (the protection
// layer retransmits until delivery), and reproduce bit-identically.
class FaultFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FaultFuzz, NoHangNoLossAndDeterministic) {
  Rng rng(0xfa017000u + static_cast<std::uint64_t>(GetParam()));
  FuzzCase c = random_case(rng);
  c.protocol = false;      // keep the oracle interaction the variable here
  c.rate *= 0.7;           // retransmissions add load; stay below saturation

  fault::FaultParams fp;
  fp.enabled = true;
  fp.seed = rng.next();
  fp.flip_rate = 0.005 * rng.uniform();
  fp.drop_rate = 0.02 * rng.uniform();
  fp.link_down_rate = 0.001 * rng.uniform();
  fp.link_down_cycles = rng.uniform_range(5, 60);
  fp.ack_timeout = rng.uniform_range(64, 512);
  fp.max_backoff = fp.ack_timeout * rng.uniform_range(4, 16);

  SCOPED_TRACE(::testing::Message()
               << c.params.width << "x" << c.params.height << " pipe="
               << c.params.pipeline_stages << " traffic=" << c.traffic
               << " rate=" << c.rate << " level=" << c.level << " flip="
               << fp.flip_rate << " drop=" << fp.drop_rate << " down="
               << fp.link_down_rate << "/" << fp.link_down_cycles);

  auto run_once = [&]() {
    std::unique_ptr<noc::RoutingFunction> routing;
    std::unique_ptr<noc::Network> net;
    if (c.level > 0) {
      auto bundle = sprint::make_noc_sprinting_network(c.params, c.level,
                                                       c.traffic, c.seed);
      routing = std::move(bundle.routing);
      net = std::move(bundle.network);
    } else {
      routing = std::make_unique<noc::XyRouting>();
      net = std::make_unique<noc::Network>(c.params, routing.get());
      net->set_endpoints(c.params.shape().all_nodes(),
                         noc::make_traffic(c.traffic, c.params.num_nodes()));
      net->set_seed(c.seed);
    }
    fault::FaultInjector injector(c.params.shape(), fp);
    const noc::ProtectionParams prot = fp.protection();
    net->enable_resilience(&injector, &prot);
    noc::SimConfig sim;
    sim.warmup = 500;
    sim.measure = 2500;
    sim.drain_max = 400000;
    sim.injection_rate = c.rate;
    sim.watchdog_cycles = 30000;
    return run_simulation(*net, sim);
  };

  const noc::SimResults r1 = run_once();
  ASSERT_FALSE(r1.hung) << r1.diagnostic;
  ASSERT_FALSE(r1.saturated) << "measured packets lost or drain exceeded";
  EXPECT_EQ(r1.packets_ejected, r1.packets_generated);

  // Same configuration, same seeds: bit-identical replay.
  const noc::SimResults r2 = run_once();
  EXPECT_EQ(r1.packets_generated, r2.packets_generated);
  EXPECT_EQ(r1.avg_packet_latency, r2.avg_packet_latency);
  EXPECT_EQ(r1.p99_latency, r2.p99_latency);
  EXPECT_EQ(r1.resilience.retransmissions, r2.resilience.retransmissions);
  EXPECT_EQ(r1.resilience.corrupted_packets, r2.resilience.corrupted_packets);
  EXPECT_EQ(r1.counters.flits_corrupted, r2.counters.flits_corrupted);
  EXPECT_EQ(r1.counters.reroutes, r2.counters.reroutes);
}

INSTANTIATE_TEST_SUITE_P(RandomFaults, FaultFuzz, ::testing::Range(0, 20));

// --- serve wire-protocol fuzzing --------------------------------------------
//
// The daemon's parser consumes raw socket lines, so it must never throw or
// crash on hostile bytes: every input yields either ok=true or an error
// string.  Three generators: pure random bytes, random JSON-ish token
// soup, and mutated valid requests (the nastiest inputs are almost-valid).

namespace {

std::string random_bytes(Rng& rng) {
  const std::size_t len = rng.uniform_int(200);
  std::string s;
  for (std::size_t i = 0; i < len; ++i)
    s += static_cast<char>(rng.uniform_int(256));
  return s;
}

std::string random_tokens(Rng& rng) {
  static const char* tokens[] = {
      "{",       "}",          "[",        "]",        ":",
      ",",       "\"op\"",     "\"submit\"", "\"kind\"", "\"sweep\"",
      "\"params\"", "\"rates\"", "\"0.1:0.1:0.5\"", "\"priority\"",
      "\"high\"", "\"job\"",   "\"timeout_ms\"", "1e308",  "-0",
      "null",    "true",       "false",    "1234567890123456789",
      "\"\\u0000\"", " ",      "\\",       "\"",
  };
  const std::size_t len = rng.uniform_int(24);
  std::string s;
  for (std::size_t i = 0; i < len; ++i)
    s += tokens[rng.uniform_int(sizeof tokens / sizeof tokens[0])];
  return s;
}

std::string mutated_valid(Rng& rng) {
  static const char* seeds[] = {
      "{\"op\":\"submit\",\"kind\":\"sweep\","
      "\"params\":{\"level\":8,\"rates\":\"0.05:0.05:0.5\"}}",
      "{\"op\":\"submit\",\"kind\":\"selftest\",\"params\":{\"tasks\":4},"
      "\"priority\":\"low\"}",
      "{\"op\":\"wait\",\"job\":\"job-1\",\"timeout_ms\":100}",
      "{\"op\":\"wait\",\"job\":\"job-1\",\"nowait\":true}",
      "{\"op\":\"wait\",\"job\":\"job-1\",\"timeout_ms\":0}",
      "{\"op\":\"watch\",\"job\":\"job-2\",\"every_ms\":50}",
      "{\"op\":\"watch\",\"job\":\"job-2\"}",
      "{\"op\":\"status\"}",
      // Streamed `watch` progress frames as the server emits them: a
      // confused client (or a proxy echoing replies back) may feed these
      // to the request parser verbatim or torn mid-line; it must reject
      // them as errors, never throw.
      "{\"ok\":true,\"event\":\"progress\",\"job\":\"job-1\","
      "\"state\":\"running\",\"cycles\":12345,\"completed_tasks\":1,"
      "\"running_tasks\":2,\"attempt\":1,\"queue_position\":0}",
      "{\"ok\":true,\"event\":\"progress\",\"job\":\"job-9\","
      "\"state\":\"queued\",\"cycles\":0,\"completed_tasks\":0,"
      "\"running_tasks\":0,\"attempt\":1,\"queue_position\":3}",
  };
  std::string s = seeds[rng.uniform_int(sizeof seeds / sizeof seeds[0])];
  const int edits = 1 + static_cast<int>(rng.uniform_int(4));
  for (int i = 0; i < edits && !s.empty(); ++i) {
    const std::size_t pos = rng.uniform_int(s.size());
    switch (rng.uniform_int(3)) {
      case 0: s[pos] = static_cast<char>(rng.uniform_int(256)); break;
      case 1: s.erase(pos, 1); break;
      default: s.insert(pos, 1, static_cast<char>(rng.uniform_int(128)));
    }
  }
  return s;
}

}  // namespace

class ServeProtocolFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ServeProtocolFuzz, ParserNeverThrowsAndErrorsAreActionable) {
  Rng rng(0x5e27eul + static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int i = 0; i < 400; ++i) {
    std::string line;
    switch (i % 3) {
      case 0: line = random_bytes(rng); break;
      case 1: line = random_tokens(rng); break;
      default: line = mutated_valid(rng);
    }
    const serve::ParseResult r = serve::parse_request(line);
    if (r.ok) {
      // Whatever parsed must be a fully validated request: re-submitting
      // through the spec round-trip cannot throw either.
      if (r.request.op == "submit") {
        EXPECT_NO_THROW({
          (void)serve::fingerprint(r.request.spec);
          (void)serve::task_count(r.request.spec);
          (void)serve::spec_from_json(serve::spec_to_json(r.request.spec));
        });
      }
    } else {
      EXPECT_FALSE(r.error.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(HostileLines, ServeProtocolFuzz,
                         ::testing::Range(0, 10));

// A `watch` stream interleaves progress frames with the final status on
// one connection.  Model a client that loses line framing: every torn
// prefix/suffix and every splice of two frames must come back as a
// parse error, never an exception or a bogus accepted request.
TEST(ServeWatchStreamFuzz, TornAndInterleavedProgressFramesNeverThrow) {
  const std::string frame =
      "{\"ok\":true,\"event\":\"progress\",\"job\":\"job-1\","
      "\"state\":\"running\",\"cycles\":777,\"completed_tasks\":0,"
      "\"running_tasks\":1,\"attempt\":2,\"queue_position\":1}";
  const std::string final_status =
      "{\"ok\":true,\"job\":\"job-1\",\"state\":\"done\",\"result\":{}}";
  for (std::size_t cut = 0; cut <= frame.size(); ++cut) {
    for (const std::string& line :
         {frame.substr(0, cut), frame.substr(cut),
          frame.substr(0, cut) + final_status,
          final_status + frame.substr(cut)}) {
      const serve::ParseResult r = serve::parse_request(line);
      EXPECT_FALSE(r.ok) << "accepted reply bytes as a request: " << line;
      EXPECT_FALSE(r.error.empty());
    }
  }
}

}  // namespace
}  // namespace nocs
