// Tests for Algorithm 1 (topological sprinting), the region predicates,
// and the topology-agnostic core: graph generators, the documented text
// file format, up*/down* table routing, the channel-dependency-graph
// deadlock check, and mesh bit-identity of the generalized builder.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>

#include "common/snapshot.hpp"
#include "noc/simulator.hpp"
#include "noc/table_routing.hpp"
#include "noc/topology.hpp"
#include "sprint/network_builder.hpp"
#include "sprint/topology.hpp"

namespace nocs::sprint {
namespace {

TEST(SprintOrder, PaperFigure5aSequence) {
  // The paper's running example: 4x4 mesh, master at the top-left corner.
  // 8-core sprinting activates {0, 1, 4, 5, 2, 8, 6, 9} in that order
  // (Euclidean distances 0, 1, 1, sqrt2, 2, 2, sqrt5, sqrt5; ties by id).
  const MeshShape mesh(4, 4);
  const std::vector<NodeId> order = sprint_order(mesh, 0);
  const std::vector<NodeId> expect8 = {0, 1, 4, 5, 2, 8, 6, 9};
  ASSERT_GE(order.size(), 8u);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(order[static_cast<std::size_t>(i)],
              expect8[static_cast<std::size_t>(i)])
        << "position " << i;
}

TEST(SprintOrder, PaperEuclideanVsHamming4Core) {
  // The paper's argument for Euclidean distance: at 4-core sprinting,
  // Euclidean picks node 5 (diagonal) while Hamming ordering (ties by
  // index) picks node 2.
  const MeshShape mesh(4, 4);
  const auto euclid = sprint_order(mesh, 0);
  const auto ham = sprint_order_hamming(mesh, 0);
  const std::set<NodeId> e4(euclid.begin(), euclid.begin() + 4);
  const std::set<NodeId> h4(ham.begin(), ham.begin() + 4);
  EXPECT_TRUE(e4.count(5));
  EXPECT_FALSE(e4.count(2));
  EXPECT_TRUE(h4.count(2));
  EXPECT_FALSE(h4.count(5));
  // And the paper's quality claim holds: the Euclidean set is tighter.
  EXPECT_LT(average_pairwise_distance(mesh, {e4.begin(), e4.end()}),
            average_pairwise_distance(mesh, {h4.begin(), h4.end()}));
}

class OrderSweep
    : public ::testing::TestWithParam<std::tuple<int, int, NodeId>> {};

TEST_P(OrderSweep, IsPermutationStartingAtMaster) {
  const auto [w, h, master_corner] = GetParam();
  const MeshShape mesh(w, h);
  // Translate corner index 0..3 to a node id.
  const NodeId master = std::vector<NodeId>{
      0, w - 1, w * (h - 1), w * h - 1}[static_cast<std::size_t>(
      master_corner)];
  const std::vector<NodeId> order = sprint_order(mesh, master);
  ASSERT_EQ(static_cast<int>(order.size()), mesh.size());
  EXPECT_EQ(order.front(), master);
  std::set<NodeId> unique(order.begin(), order.end());
  EXPECT_EQ(static_cast<int>(unique.size()), mesh.size());
}

TEST_P(OrderSweep, DistancesNonDecreasing) {
  const auto [w, h, master_corner] = GetParam();
  const MeshShape mesh(w, h);
  const NodeId master = std::vector<NodeId>{
      0, w - 1, w * (h - 1), w * h - 1}[static_cast<std::size_t>(
      master_corner)];
  const std::vector<NodeId> order = sprint_order(mesh, master);
  const Coord m = mesh.coord_of(master);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_GE(euclidean_sq(mesh.coord_of(order[i]), m),
              euclidean_sq(mesh.coord_of(order[i - 1]), m));
}

TEST_P(OrderSweep, EveryPrefixIsConvex) {
  // The paper's claim: "chosen nodes would form a convex set in the
  // Euclidean space".
  const auto [w, h, master_corner] = GetParam();
  const MeshShape mesh(w, h);
  const NodeId master = std::vector<NodeId>{
      0, w - 1, w * (h - 1), w * h - 1}[static_cast<std::size_t>(
      master_corner)];
  const std::vector<NodeId> order = sprint_order(mesh, master);
  for (int k = 1; k <= mesh.size(); ++k) {
    const std::vector<NodeId> prefix(order.begin(), order.begin() + k);
    EXPECT_TRUE(is_convex_region(mesh, prefix))
        << "level " << k << " master " << master;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MeshesAndMasters, OrderSweep,
    ::testing::Combine(::testing::Values(2, 4, 5, 8),
                       ::testing::Values(2, 4, 6),
                       ::testing::Values(0, 1, 2, 3)));

TEST(SprintOrder, CornerMasterPrefixesAreStaircases) {
  // CDOR's structural requirement, checked here for the paper's top-left
  // master (other corners are handled by reflection inside CdorRouting).
  for (int w : {2, 4, 8}) {
    for (int h : {2, 4, 5}) {
      const MeshShape mesh(w, h);
      const std::vector<NodeId> order = sprint_order(mesh, 0);
      for (int k = 1; k <= mesh.size(); ++k) {
        const std::vector<NodeId> prefix(order.begin(), order.begin() + k);
        EXPECT_TRUE(is_staircase_region(mesh, prefix))
            << w << "x" << h << " level " << k;
      }
    }
  }
}

TEST(ActiveSet, PrefixOfOrder) {
  const MeshShape mesh(4, 4);
  const auto order = sprint_order(mesh, 0);
  for (int k = 1; k <= 16; ++k) {
    const auto set = active_set(mesh, k, 0);
    ASSERT_EQ(static_cast<int>(set.size()), k);
    for (int i = 0; i < k; ++i)
      EXPECT_EQ(set[static_cast<std::size_t>(i)],
                order[static_cast<std::size_t>(i)]);
  }
}

TEST(ConvexRegion, DetectsNonConvexSets) {
  const MeshShape mesh(4, 4);
  // Nodes 0 and 2 without node 1 between them: not convex.
  EXPECT_FALSE(is_convex_region(mesh, {0, 2}));
  EXPECT_TRUE(is_convex_region(mesh, {0, 1, 2}));
  // An L-shape missing its inner corner is still convex by the hull test
  // only if no mesh node falls inside; {0,1,4} triangle is convex.
  EXPECT_TRUE(is_convex_region(mesh, {0, 1, 4}));
  // Diagonal without the off-diagonal nodes: hull contains none of the
  // integer interior points... 0=(0,0), 5=(1,1): segment passes no other
  // lattice point, so it is convex; add 10=(2,2) and the hull is a longer
  // diagonal, still missing no lattice point.
  EXPECT_TRUE(is_convex_region(mesh, {0, 5}));
  // A hollow square is not convex (center missing).
  EXPECT_FALSE(is_convex_region(mesh, {0, 2, 8, 10}));
}

TEST(StaircaseRegion, DetectsViolations) {
  const MeshShape mesh(4, 4);
  EXPECT_TRUE(is_staircase_region(mesh, {0}));
  EXPECT_TRUE(is_staircase_region(mesh, {0, 1, 4}));
  EXPECT_TRUE(is_staircase_region(mesh, {0, 1, 2, 3, 4, 5}));
  // Row 0 narrower than row 1: widths increase downward -> not staircase.
  EXPECT_FALSE(is_staircase_region(mesh, {0, 4, 5}));
  // Gap in a row -> not left-aligned.
  EXPECT_FALSE(is_staircase_region(mesh, {0, 2}));
  // Missing the master row entirely.
  EXPECT_FALSE(is_staircase_region(mesh, {4, 5}));
}

TEST(PairwiseDistance, HandComputed) {
  const MeshShape mesh(4, 4);
  // {0,1}: single pair at distance 1.
  EXPECT_DOUBLE_EQ(average_pairwise_distance(mesh, {0, 1}), 1.0);
  // {0,1,4}: pairs (0,1)=1, (0,4)=1, (1,4)=2 -> mean 4/3.
  EXPECT_NEAR(average_pairwise_distance(mesh, {0, 1, 4}), 4.0 / 3.0, 1e-12);
}

TEST(SprintOrderHamming, OrderedByManhattanDistance) {
  const MeshShape mesh(4, 4);
  const auto order = sprint_order_hamming(mesh, 0);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_GE(manhattan(mesh.coord_of(order[i]), {0, 0}),
              manhattan(mesh.coord_of(order[i - 1]), {0, 0}));
}

// --- topology graph core ----------------------------------------------------

TEST(TopologyGraph, MeshGeneratorMatchesLegacyShape) {
  const noc::Topology t = noc::Topology::mesh(4, 4);
  EXPECT_TRUE(t.is_mesh());
  EXPECT_EQ(t.num_nodes(), 16);
  // 2 * (w*(h-1) + h*(w-1)) directed links = 48 on a 4x4.
  EXPECT_EQ(t.links().size(), 48u);
  const MeshShape shape(4, 4);
  for (NodeId id = 0; id < t.num_nodes(); ++id) {
    // Every mesh node keeps the full five-port complement (local + NESW)
    // so router arbitration loop bounds match the legacy construction.
    EXPECT_EQ(t.num_ports(id), 5);
    EXPECT_EQ(t.coord(id), shape.coord_of(id));
  }
  EXPECT_TRUE(t.connected());
}

TEST(TopologyGraph, GeneratorInvariants) {
  struct Case {
    const char* label;
    noc::Topology topo;
    std::size_t links;
    int degree;  // uniform out-degree (data links, excluding local port)
  };
  const Case cases[] = {
      {"torus4x4", noc::Topology::torus(4, 4), 64u, 4},
      {"ring16s4", noc::Topology::ring_circulant(16, 4), 64u, 4},
      {"hamming4x4", noc::Topology::hamming(4, 4), 96u, 6},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    EXPECT_FALSE(c.topo.is_mesh());
    EXPECT_EQ(c.topo.num_nodes(), 16);
    EXPECT_EQ(c.topo.links().size(), c.links);
    EXPECT_TRUE(c.topo.connected());
    for (NodeId id = 0; id < c.topo.num_nodes(); ++id)
      EXPECT_EQ(c.topo.out_degree(id), c.degree) << "node " << id;
    // Every directed link has its reverse (validate() enforces it, but
    // assert through the public index too).
    for (const noc::TopoLink& l : c.topo.links())
      EXPECT_GE(c.topo.port_to(l.dst, l.src), 0)
          << l.src << "->" << l.dst << " missing reverse";
  }
}

TEST(TopologyGraph, RingCirculantDiameterChordEmittedOnce) {
  // skip == n/2: each chord is its own reverse pair, so 16 ring pairs
  // (32 directed) plus 8 chords (16 directed) = 48 directed links.
  const noc::Topology t = noc::Topology::ring_circulant(16, 8);
  EXPECT_EQ(t.links().size(), 48u);
  for (NodeId id = 0; id < t.num_nodes(); ++id)
    EXPECT_EQ(t.out_degree(id), 3);
  EXPECT_TRUE(t.connected());
}

TEST(TopologyGraph, FingerprintDiscriminates) {
  const noc::Topology a = noc::Topology::mesh(4, 4);
  const noc::Topology b = noc::Topology::mesh(4, 4);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), noc::Topology::torus(4, 4).fingerprint());
  EXPECT_NE(a.fingerprint(), noc::Topology::mesh(8, 2).fingerprint());
}

// --- text file format -------------------------------------------------------

TEST(TopologyFile, ParseAndRoundTrip) {
  const std::string text =
      "# triangle with a slow spur\n"
      "topology demo\n"
      "nodes 4\n"
      "node 0 0 0\n"
      "node 1 1 0\n"
      "node 2 0 1\n"
      "node 3 2 0\n"
      "link 0 1\n"
      "link 1 2\n"
      "link 0 2\n"
      "link 1 3 latency 3 width 2\n";
  const noc::Topology t = noc::Topology::parse(text);
  EXPECT_EQ(t.kind(), "file:demo");
  EXPECT_EQ(t.num_nodes(), 4);
  EXPECT_EQ(t.links().size(), 8u);
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.coord(3), (Coord{2, 0}));
  const noc::TopoLink* spur = nullptr;
  for (const noc::TopoLink& l : t.links())
    if (l.src == 1 && l.dst == 3) spur = &l;
  ASSERT_NE(spur, nullptr);
  EXPECT_EQ(spur->latency, 3);
  EXPECT_EQ(spur->width, 2);
  // Round trip: the emitted text re-parses to the same graph.
  const noc::Topology back = noc::Topology::parse(t.to_text());
  EXPECT_EQ(back.fingerprint(), t.fingerprint());
}

TEST(TopologyFile, MalformedInputsRejected) {
  using noc::Topology;
  // Unknown directive.
  EXPECT_THROW(Topology::parse("nodes 2\nnode 0 0 0\nnode 1 1 0\nfoo\n"),
               std::invalid_argument);
  // Link before the nodes directive.
  EXPECT_THROW(Topology::parse("link 0 1\n"), std::invalid_argument);
  // Endpoint out of range.
  EXPECT_THROW(
      Topology::parse("nodes 2\nnode 0 0 0\nnode 1 1 0\nlink 0 5\n"),
      std::invalid_argument);
  // Self link.
  EXPECT_THROW(
      Topology::parse("nodes 2\nnode 0 0 0\nnode 1 1 0\nlink 0 0\n"),
      std::invalid_argument);
  // Duplicate node definition.
  EXPECT_THROW(Topology::parse("nodes 2\nnode 0 0 0\nnode 0 1 0\n"),
               std::invalid_argument);
  // Node never defined.
  EXPECT_THROW(Topology::parse("nodes 2\nnode 0 0 0\nlink 0 1\n"),
               std::invalid_argument);
  // Bad latency value.
  EXPECT_THROW(Topology::parse("nodes 2\nnode 0 0 0\nnode 1 1 0\n"
                               "link 0 1 latency 0\n"),
               std::invalid_argument);
  // A oneway link with no reverse fails validation (wormhole credits need
  // the return channel).
  EXPECT_THROW(Topology::parse("nodes 2\nnode 0 0 0\nnode 1 1 0\n"
                               "link 0 1 oneway\n"),
               std::invalid_argument);
  // Disconnected graph.
  EXPECT_THROW(Topology::parse("nodes 4\nnode 0 0 0\nnode 1 1 0\n"
                               "node 2 2 0\nnode 3 3 0\n"
                               "link 0 1\nlink 2 3\n"),
               std::invalid_argument);
}

// --- generalized sprint order ----------------------------------------------

TEST(SprintOrderTopology, MeshDispatchMatchesLegacyOrder) {
  const MeshShape mesh(4, 4);
  const noc::Topology topo = noc::Topology::mesh(4, 4);
  for (NodeId master : {0, 3, 12, 15})
    EXPECT_EQ(sprint_order(topo, master), sprint_order(mesh, master));
}

TEST(SprintOrderTopology, PrefixesConnectedOnAllBuiltins) {
  const noc::Topology topos[] = {
      noc::Topology::mesh(4, 4), noc::Topology::torus(4, 4),
      noc::Topology::ring_circulant(16, 4), noc::Topology::hamming(4, 4)};
  for (const noc::Topology& t : topos) {
    SCOPED_TRACE(t.kind());
    const std::vector<NodeId> order = sprint_order(t, 0);
    ASSERT_EQ(static_cast<int>(order.size()), t.num_nodes());
    EXPECT_EQ(order.front(), 0);
    const std::set<NodeId> unique(order.begin(), order.end());
    EXPECT_EQ(static_cast<int>(unique.size()), t.num_nodes());
    for (int k = 1; k <= t.num_nodes(); ++k) {
      const std::vector<NodeId> prefix(order.begin(), order.begin() + k);
      EXPECT_TRUE(t.connected_subgraph(prefix)) << "level " << k;
    }
  }
}

// --- deadlock freedom across topologies and sprint levels -------------------

TEST(DeadlockCheck, EveryBuiltinTopologyAtEveryLevel) {
  const noc::Topology topos[] = {
      noc::Topology::mesh(4, 4), noc::Topology::torus(4, 4),
      noc::Topology::ring_circulant(16, 4),
      noc::Topology::ring_circulant(16, 8), noc::Topology::hamming(4, 4)};
  for (const noc::Topology& t : topos) {
    SCOPED_TRACE(t.kind());
    for (int level = 2; level <= t.num_nodes(); ++level) {
      const std::vector<NodeId> active = active_set(t, level, 0);
      std::unique_ptr<noc::RoutingPolicy> policy;
      if (t.is_mesh()) {
        policy = std::make_unique<noc::MeshRoutingPolicy>(
            std::make_unique<CdorRouting>(t.mesh_shape(), active, 0),
            t.mesh_shape());
      } else {
        policy = std::make_unique<noc::TableRouting>(
            noc::TableRouting::up_down(t, active, 0));
      }
      const noc::DeadlockCheckResult res =
          noc::check_deadlock_free(t, *policy, active);
      EXPECT_TRUE(res.ok) << "level " << level << ": " << res.detail;
    }
  }
}

TEST(DeadlockCheck, UpDownRejectsDisconnectedActiveSet) {
  const noc::Topology t = noc::Topology::ring_circulant(16, 4);
  // {0, 2} is disconnected in the active subgraph (no direct edge).
  EXPECT_THROW(noc::TableRouting::up_down(t, {0, 2}, 0),
               std::invalid_argument);
}

// --- mesh bit-identity of the generalized builder ---------------------------

TEST(TopologyBuilder, MeshRunsBitIdenticalToLegacyBuilder) {
  noc::NetworkParams params;  // Table 1 defaults: 4x4 mesh
  const noc::Topology topo = noc::Topology::mesh(params.width, params.height);
  noc::SimConfig sim;
  sim.warmup = 500;
  sim.measure = 2000;
  sim.injection_rate = 0.15;
  for (int level : {2, 4, 8, 16}) {
    SCOPED_TRACE(level);
    NetworkBundle legacy =
        make_noc_sprinting_network(params, level, "uniform", 42);
    TopologyBundle general =
        make_topology_sprinting_network(params, topo, level, "uniform", 42);
    EXPECT_EQ(general.endpoints, legacy.endpoints);
    EXPECT_TRUE(general.deadlock.ok) << general.deadlock.detail;
    const noc::SimResults a = noc::run_simulation(*legacy.network, sim);
    const noc::SimResults b = noc::run_simulation(*general.network, sim);
    // Exact double equality: the generalized path must reproduce the
    // legacy mesh simulation bit for bit, not approximately.
    EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
    EXPECT_EQ(a.avg_network_latency, b.avg_network_latency);
    EXPECT_EQ(a.avg_hops, b.avg_hops);
    EXPECT_EQ(a.accepted_rate, b.accepted_rate);
    EXPECT_EQ(a.packets_ejected, b.packets_ejected);
  }
}

TEST(TopologyBuilder, NonMeshLevelsSimulateCleanly) {
  noc::NetworkParams params;
  params.width = 16;
  params.height = 1;
  const noc::Topology topo = noc::Topology::ring_circulant(16, 4);
  noc::SimConfig sim;
  sim.warmup = 500;
  sim.measure = 2000;
  sim.injection_rate = 0.1;
  for (int level : {2, 5, 16}) {
    SCOPED_TRACE(level);
    TopologyBundle b =
        make_topology_sprinting_network(params, topo, level, "uniform", 7);
    EXPECT_TRUE(b.deadlock.ok) << b.deadlock.detail;
    const noc::SimResults r = noc::run_simulation(*b.network, sim);
    EXPECT_GT(r.packets_ejected, 0u);
    EXPECT_FALSE(r.saturated);
  }
}

TEST(TopologyBuilder, SnapshotFingerprintGuardsTopologyMismatch) {
  // A checkpoint taken on one topology must refuse to load into a network
  // built over a different graph.
  noc::NetworkParams params;
  params.width = 16;
  params.height = 1;
  const noc::Topology ring = noc::Topology::ring_circulant(16, 4);
  const noc::Topology ham = noc::Topology::hamming(4, 4);
  TopologyBundle a =
      make_topology_sprinting_network(params, ring, 16, "uniform", 1);
  TopologyBundle b =
      make_topology_sprinting_network(params, ham, 16, "uniform", 1);
  for (int i = 0; i < 100; ++i) a.network->tick();
  snapshot::Writer w;
  a.network->save_state(w);
  snapshot::Reader r(w.bytes());
  EXPECT_THROW(b.network->load_state(r), snapshot::SnapshotError);
}

}  // namespace
}  // namespace nocs::sprint
