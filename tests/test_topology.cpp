// Tests for Algorithm 1 (topological sprinting) and the region predicates.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sprint/topology.hpp"

namespace nocs::sprint {
namespace {

TEST(SprintOrder, PaperFigure5aSequence) {
  // The paper's running example: 4x4 mesh, master at the top-left corner.
  // 8-core sprinting activates {0, 1, 4, 5, 2, 8, 6, 9} in that order
  // (Euclidean distances 0, 1, 1, sqrt2, 2, 2, sqrt5, sqrt5; ties by id).
  const MeshShape mesh(4, 4);
  const std::vector<NodeId> order = sprint_order(mesh, 0);
  const std::vector<NodeId> expect8 = {0, 1, 4, 5, 2, 8, 6, 9};
  ASSERT_GE(order.size(), 8u);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(order[static_cast<std::size_t>(i)],
              expect8[static_cast<std::size_t>(i)])
        << "position " << i;
}

TEST(SprintOrder, PaperEuclideanVsHamming4Core) {
  // The paper's argument for Euclidean distance: at 4-core sprinting,
  // Euclidean picks node 5 (diagonal) while Hamming ordering (ties by
  // index) picks node 2.
  const MeshShape mesh(4, 4);
  const auto euclid = sprint_order(mesh, 0);
  const auto ham = sprint_order_hamming(mesh, 0);
  const std::set<NodeId> e4(euclid.begin(), euclid.begin() + 4);
  const std::set<NodeId> h4(ham.begin(), ham.begin() + 4);
  EXPECT_TRUE(e4.count(5));
  EXPECT_FALSE(e4.count(2));
  EXPECT_TRUE(h4.count(2));
  EXPECT_FALSE(h4.count(5));
  // And the paper's quality claim holds: the Euclidean set is tighter.
  EXPECT_LT(average_pairwise_distance(mesh, {e4.begin(), e4.end()}),
            average_pairwise_distance(mesh, {h4.begin(), h4.end()}));
}

class OrderSweep
    : public ::testing::TestWithParam<std::tuple<int, int, NodeId>> {};

TEST_P(OrderSweep, IsPermutationStartingAtMaster) {
  const auto [w, h, master_corner] = GetParam();
  const MeshShape mesh(w, h);
  // Translate corner index 0..3 to a node id.
  const NodeId master = std::vector<NodeId>{
      0, w - 1, w * (h - 1), w * h - 1}[static_cast<std::size_t>(
      master_corner)];
  const std::vector<NodeId> order = sprint_order(mesh, master);
  ASSERT_EQ(static_cast<int>(order.size()), mesh.size());
  EXPECT_EQ(order.front(), master);
  std::set<NodeId> unique(order.begin(), order.end());
  EXPECT_EQ(static_cast<int>(unique.size()), mesh.size());
}

TEST_P(OrderSweep, DistancesNonDecreasing) {
  const auto [w, h, master_corner] = GetParam();
  const MeshShape mesh(w, h);
  const NodeId master = std::vector<NodeId>{
      0, w - 1, w * (h - 1), w * h - 1}[static_cast<std::size_t>(
      master_corner)];
  const std::vector<NodeId> order = sprint_order(mesh, master);
  const Coord m = mesh.coord_of(master);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_GE(euclidean_sq(mesh.coord_of(order[i]), m),
              euclidean_sq(mesh.coord_of(order[i - 1]), m));
}

TEST_P(OrderSweep, EveryPrefixIsConvex) {
  // The paper's claim: "chosen nodes would form a convex set in the
  // Euclidean space".
  const auto [w, h, master_corner] = GetParam();
  const MeshShape mesh(w, h);
  const NodeId master = std::vector<NodeId>{
      0, w - 1, w * (h - 1), w * h - 1}[static_cast<std::size_t>(
      master_corner)];
  const std::vector<NodeId> order = sprint_order(mesh, master);
  for (int k = 1; k <= mesh.size(); ++k) {
    const std::vector<NodeId> prefix(order.begin(), order.begin() + k);
    EXPECT_TRUE(is_convex_region(mesh, prefix))
        << "level " << k << " master " << master;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MeshesAndMasters, OrderSweep,
    ::testing::Combine(::testing::Values(2, 4, 5, 8),
                       ::testing::Values(2, 4, 6),
                       ::testing::Values(0, 1, 2, 3)));

TEST(SprintOrder, CornerMasterPrefixesAreStaircases) {
  // CDOR's structural requirement, checked here for the paper's top-left
  // master (other corners are handled by reflection inside CdorRouting).
  for (int w : {2, 4, 8}) {
    for (int h : {2, 4, 5}) {
      const MeshShape mesh(w, h);
      const std::vector<NodeId> order = sprint_order(mesh, 0);
      for (int k = 1; k <= mesh.size(); ++k) {
        const std::vector<NodeId> prefix(order.begin(), order.begin() + k);
        EXPECT_TRUE(is_staircase_region(mesh, prefix))
            << w << "x" << h << " level " << k;
      }
    }
  }
}

TEST(ActiveSet, PrefixOfOrder) {
  const MeshShape mesh(4, 4);
  const auto order = sprint_order(mesh, 0);
  for (int k = 1; k <= 16; ++k) {
    const auto set = active_set(mesh, k, 0);
    ASSERT_EQ(static_cast<int>(set.size()), k);
    for (int i = 0; i < k; ++i)
      EXPECT_EQ(set[static_cast<std::size_t>(i)],
                order[static_cast<std::size_t>(i)]);
  }
}

TEST(ConvexRegion, DetectsNonConvexSets) {
  const MeshShape mesh(4, 4);
  // Nodes 0 and 2 without node 1 between them: not convex.
  EXPECT_FALSE(is_convex_region(mesh, {0, 2}));
  EXPECT_TRUE(is_convex_region(mesh, {0, 1, 2}));
  // An L-shape missing its inner corner is still convex by the hull test
  // only if no mesh node falls inside; {0,1,4} triangle is convex.
  EXPECT_TRUE(is_convex_region(mesh, {0, 1, 4}));
  // Diagonal without the off-diagonal nodes: hull contains none of the
  // integer interior points... 0=(0,0), 5=(1,1): segment passes no other
  // lattice point, so it is convex; add 10=(2,2) and the hull is a longer
  // diagonal, still missing no lattice point.
  EXPECT_TRUE(is_convex_region(mesh, {0, 5}));
  // A hollow square is not convex (center missing).
  EXPECT_FALSE(is_convex_region(mesh, {0, 2, 8, 10}));
}

TEST(StaircaseRegion, DetectsViolations) {
  const MeshShape mesh(4, 4);
  EXPECT_TRUE(is_staircase_region(mesh, {0}));
  EXPECT_TRUE(is_staircase_region(mesh, {0, 1, 4}));
  EXPECT_TRUE(is_staircase_region(mesh, {0, 1, 2, 3, 4, 5}));
  // Row 0 narrower than row 1: widths increase downward -> not staircase.
  EXPECT_FALSE(is_staircase_region(mesh, {0, 4, 5}));
  // Gap in a row -> not left-aligned.
  EXPECT_FALSE(is_staircase_region(mesh, {0, 2}));
  // Missing the master row entirely.
  EXPECT_FALSE(is_staircase_region(mesh, {4, 5}));
}

TEST(PairwiseDistance, HandComputed) {
  const MeshShape mesh(4, 4);
  // {0,1}: single pair at distance 1.
  EXPECT_DOUBLE_EQ(average_pairwise_distance(mesh, {0, 1}), 1.0);
  // {0,1,4}: pairs (0,1)=1, (0,4)=1, (1,4)=2 -> mean 4/3.
  EXPECT_NEAR(average_pairwise_distance(mesh, {0, 1, 4}), 4.0 / 3.0, 1e-12);
}

TEST(SprintOrderHamming, OrderedByManhattanDistance) {
  const MeshShape mesh(4, 4);
  const auto order = sprint_order_hamming(mesh, 0);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_GE(manhattan(mesh.coord_of(order[i]), {0, 0}),
              manhattan(mesh.coord_of(order[i - 1]), {0, 0}));
}

}  // namespace
}  // namespace nocs::sprint
