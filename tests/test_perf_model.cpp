// Tests for the execution-time model.
#include <gtest/gtest.h>

#include "cmp/perf_model.hpp"

namespace nocs::cmp {
namespace {

WorkloadParams simple() {
  WorkloadParams w;
  w.name = "synthetic";
  w.serial_frac = 0.1;
  w.alpha = 0.01;
  w.beta = 0.001;
  w.comm_gamma = 0.2;
  w.injection_rate = 0.1;
  return w;
}

TEST(PerfModel, SingleCoreIsUnity) {
  const PerfModel pm(16);
  EXPECT_DOUBLE_EQ(pm.exec_time(simple(), 1), 1.0);
  EXPECT_DOUBLE_EQ(pm.speedup(simple(), 1), 1.0);
}

TEST(PerfModel, MatchesClosedForm) {
  const PerfModel pm(16);
  const WorkloadParams w = simple();
  const int n = 6;
  const double expected = 0.1 + 0.9 / 6.0 + 0.01 * 5.0 + 0.001 * 25.0;
  EXPECT_NEAR(pm.exec_time(w, n), expected, 1e-12);
}

TEST(PerfModel, PureAmdahlWithoutOverheads) {
  WorkloadParams w = simple();
  w.alpha = 0.0;
  w.beta = 0.0;
  const PerfModel pm(16);
  EXPECT_NEAR(pm.speedup(w, 16), 1.0 / (0.1 + 0.9 / 16.0), 1e-12);
  // Monotone improvement under pure Amdahl.
  for (int n = 2; n <= 16; ++n)
    EXPECT_LT(pm.exec_time(w, n), pm.exec_time(w, n - 1));
}

TEST(PerfModel, OptimalLevelMinimizes) {
  const PerfModel pm(16);
  const WorkloadParams w = simple();
  const int k = pm.optimal_level(w);
  const double tk = pm.exec_time(w, k);
  for (int n = 1; n <= 16; ++n) EXPECT_LE(tk, pm.exec_time(w, n) + 1e-12);
}

TEST(PerfModel, ScalingCurveMatchesPointQueries) {
  const PerfModel pm(16);
  const WorkloadParams w = simple();
  const std::vector<double> curve = pm.scaling_curve(w);
  ASSERT_EQ(curve.size(), 16u);
  for (int n = 1; n <= 16; ++n)
    EXPECT_DOUBLE_EQ(curve[static_cast<std::size_t>(n - 1)],
                     pm.exec_time(w, n));
}

TEST(PerfModel, LatencyCouplingDirection) {
  // Higher measured network latency slows the run; lower speeds it up —
  // the channel through which CDOR's 24.5% latency cut helps end-to-end.
  const PerfModel pm(16);
  const WorkloadParams w = simple();
  const double base = pm.exec_time(w, 8);
  EXPECT_GT(pm.exec_time(w, 8, /*measured=*/30.0, /*reference=*/20.0), base);
  EXPECT_LT(pm.exec_time(w, 8, /*measured=*/15.0, /*reference=*/20.0), base);
  EXPECT_NEAR(pm.exec_time(w, 8, 20.0, 20.0), base, 1e-12);
}

TEST(PerfModel, LatencyCouplingProportionalToGamma) {
  const PerfModel pm(16);
  WorkloadParams lo = simple();
  lo.comm_gamma = 0.1;
  WorkloadParams hi = simple();
  hi.comm_gamma = 0.4;
  const double dlo = pm.exec_time(lo, 8, 30.0, 20.0) - pm.exec_time(lo, 8);
  const double dhi = pm.exec_time(hi, 8, 30.0, 20.0) - pm.exec_time(hi, 8);
  EXPECT_NEAR(dhi / dlo, 4.0, 1e-9);
}

TEST(PerfModel, SingleCoreIgnoresNetwork) {
  const PerfModel pm(16);
  EXPECT_DOUBLE_EQ(pm.exec_time(simple(), 1, 100.0, 10.0), 1.0);
}

TEST(PerfModel, RejectsOutOfRangeCores) {
  const PerfModel pm(8);
  EXPECT_DEATH(pm.exec_time(simple(), 9), "precondition");
  EXPECT_DEATH(pm.exec_time(simple(), 0), "precondition");
}

}  // namespace
}  // namespace nocs::cmp
