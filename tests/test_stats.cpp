// Tests for statistics accumulators.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace nocs {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, MatchesDirectComputation) {
  const double xs[] = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  RunningStat s;
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / 8.0;
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= 7.0;  // sample variance
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.sum(), sum);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 5.0);
}

TEST(RunningStat, Reset) {
  RunningStat s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(10.0, 5);  // bins [0,10) [10,20) ... [40,50); beyond clamps
  h.add(5.0);
  h.add(15.0);
  h.add(999.0);
  h.add(-3.0);  // clamps into bin 0
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(4), 1u);
}

TEST(Histogram, Quantile) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
  EXPECT_LE(h.quantile(0.0), 1.0);
}

TEST(Means, Geometric) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_EQ(geometric_mean({}), 0.0);
}

TEST(Means, Arithmetic) {
  EXPECT_DOUBLE_EQ(arithmetic_mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(arithmetic_mean({}), 0.0);
}

TEST(RunningStat, SingleSampleVarianceZero) {
  RunningStat s;
  s.add(42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
}

TEST(RunningStat, NumericallyStableForLargeOffsets) {
  // Welford's algorithm must not catastrophically cancel when values sit
  // on a huge offset (naive sum-of-squares would).
  RunningStat s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2 ? 1.0 : -1.0));
  EXPECT_NEAR(s.variance(), 1000.0 / 999.0, 1e-6);  // sample variance of +-1
  EXPECT_NEAR(s.mean(), 1e9, 1.0);
}

// Regression: quantile must use ceil(q*total) for the target rank, not
// truncation.  One sample per bin 0..9: p25 is the 3rd-ranked sample
// (rank ceil(2.5) = 3), whose interpolated position is the upper edge of
// bin 2.  The old truncating code answered 2.0 — one full bin low.
TEST(Histogram, QuantileUsesCeilingRank) {
  Histogram h(1.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

// Regression: q=0 must report the lower edge of the first OCCUPIED bin,
// not bin 0 unconditionally (the old code returned 0 even when every
// sample sat far above zero).
TEST(Histogram, QuantileZeroSkipsEmptyLeadingBins) {
  Histogram h(1.0, 10);
  for (int i = 0; i < 3; ++i) h.add(5.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 6.0);
  // rank ceil(0.5*3)=2 of 3 samples in the bin -> 2/3 of the way across.
  EXPECT_NEAR(h.quantile(0.5), 5.0 + 2.0 / 3.0, 1e-12);
}

// Regression: quantiles interpolate within the containing bin instead of
// snapping to a bin edge (sample ranks spread uniformly across the bin).
TEST(Histogram, QuantileInterpolatesWithinBin) {
  Histogram h(10.0, 5);
  for (int i = 0; i < 10; ++i) h.add(1.0);  // all ten samples in bin 0
  EXPECT_DOUBLE_EQ(h.quantile(0.1), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileEmptyAndSingleSample) {
  Histogram empty(1.0, 4);
  EXPECT_EQ(empty.quantile(0.5), 0.0);
  Histogram h(1.0, 4);
  h.add(0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);  // upper edge of its bin
}

// Regression: out-of-range samples were silently clamped with no trace.
// Fixed histograms now count them; auto-grow ones widen instead.
TEST(Histogram, OverflowCountedWhenFixed) {
  Histogram h(1.0, 4);
  h.add(10.0);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin(3), 1u);
  EXPECT_TRUE(h.range_extended());
  EXPECT_DOUBLE_EQ(h.max_value(), 10.0);
}

TEST(Histogram, AutoGrowCoversLargeSamples) {
  Histogram h(1.0, 4, /*auto_grow=*/true);
  for (double x : {0.5, 1.5, 2.5, 3.5}) h.add(x);
  h.add(10.0);  // forces two pairwise merges: width 1 -> 4, range 16
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_TRUE(h.range_extended());
  EXPECT_DOUBLE_EQ(h.bin_width(), 4.0);
  EXPECT_EQ(h.bin(0), 4u);
  EXPECT_EQ(h.bin(2), 1u);
  EXPECT_GE(h.quantile(1.0), 10.0);  // the tail is no longer understated
  EXPECT_DOUBLE_EQ(h.max_value(), 10.0);
}

TEST(Histogram, QuantileMonotonicInQ) {
  Histogram h(1.0, 50);
  for (int i = 0; i < 500; ++i) h.add(static_cast<double>(i % 37));
  double prev = -1.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace nocs
