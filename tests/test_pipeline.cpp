// Tests for the configurable router pipeline depth (5-stage classic vs
// 3-stage lookahead/speculative).
#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "noc/simulator.hpp"
#include "sprint/network_builder.hpp"

namespace nocs::noc {
namespace {

NetworkParams with_stages(int stages) {
  NetworkParams p;
  p.pipeline_stages = stages;
  return p;
}

Cycle single_packet_delivery_time(int stages) {
  const NetworkParams p = with_stages(stages);
  XyRouting xy;
  Network net(p, &xy);
  net.ni(0).send_packet(net.now(), 15);
  for (int i = 0; i < 300; ++i) {
    net.tick();
    if (net.ni(15).total_ejected_flits() == 5) return net.now();
  }
  return 0;
}

TEST(Pipeline, ThreeStageIsFasterPerHop) {
  const Cycle t5 = single_packet_delivery_time(5);
  const Cycle t3 = single_packet_delivery_time(3);
  ASSERT_GT(t5, 0u);
  ASSERT_GT(t3, 0u);
  // The 0 -> 15 XY path traverses 7 routers (source and destination
  // included); each saves exactly 2 pipeline cycles: 14 cycles total.
  EXPECT_EQ(t5 - t3, 14u);
}

TEST(Pipeline, ThreeStageDeliversAllPairs) {
  const NetworkParams p = with_stages(3);
  XyRouting xy;
  Network net(p, &xy);
  for (NodeId s = 0; s < 16; ++s)
    for (NodeId d = 0; d < 16; ++d)
      if (s != d) net.ni(s).send_packet(net.now(), d);
  for (int i = 0; i < 20000 && !net.drained(); ++i) net.tick();
  EXPECT_TRUE(net.drained());
  const RouterCounters c = net.total_counters();
  EXPECT_EQ(c.buffer_writes, c.buffer_reads);  // conservation holds
}

TEST(Pipeline, ThreeStageZeroLoadLatencyDrops) {
  SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 8000;
  cfg.injection_rate = 0.02;
  double lat[2];
  int i = 0;
  for (int stages : {5, 3}) {
    const NetworkParams p = with_stages(stages);
    XyRouting xy;
    Network net(p, &xy);
    net.set_endpoints(net.params().shape().all_nodes(),
                      make_traffic("uniform", 16));
    net.set_seed(19);
    lat[i++] = run_simulation(net, cfg).avg_packet_latency;
  }
  // ~2 cycles per hop * ~2.7 average hops: expect a 4-7 cycle drop.
  EXPECT_GT(lat[0] - lat[1], 3.5);
  EXPECT_LT(lat[0] - lat[1], 8.0);
}

TEST(Pipeline, DeeperPipelineAmplifiesSprintLatencyCut) {
  // Per-hop router delay scales the hop-proportional part of latency
  // while serialization/queueing stay fixed, so the *relative* latency
  // cut of NoC-sprinting's shorter paths grows with pipeline depth: the
  // 5-stage cut must exceed the 3-stage cut.
  SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 6000;
  cfg.injection_rate = 0.1;
  double cut[2];
  int i = 0;
  for (int stages : {5, 3}) {
    NetworkParams p = with_stages(stages);
    auto nb = sprint::make_noc_sprinting_network(p, 4, "uniform", 41);
    const double noc_lat =
        run_simulation(*nb.network, cfg).avg_packet_latency;
    auto fb = sprint::make_full_sprinting_network(p, 4, "uniform", 41);
    const double full_lat =
        run_simulation(*fb.network, cfg).avg_packet_latency;
    cut[i++] = 1.0 - noc_lat / full_lat;
  }
  EXPECT_GT(cut[0], cut[1]);  // cut[0] = 5-stage, cut[1] = 3-stage
}

TEST(Pipeline, ThreeStageWorksWithProtocolTraffic) {
  NetworkParams p = with_stages(3);
  p.num_classes = 2;
  XyRouting xy;
  Network net(p, &xy);
  net.set_request_reply(1, 5);
  net.set_endpoints(net.params().shape().all_nodes(),
                    make_traffic("uniform", 16));
  net.set_seed(23);
  SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 4000;
  cfg.injection_rate = 0.08;
  const SimResults r = run_simulation(net, cfg);
  EXPECT_FALSE(r.saturated);
  EXPECT_EQ(r.packets_ejected, r.packets_generated);
}

TEST(Pipeline, InvalidDepthRejected) {
  NetworkParams p;
  p.pipeline_stages = 4;
  EXPECT_DEATH(p.validate(), "precondition");
}

}  // namespace
}  // namespace nocs::noc
