// Tests for Algorithm 2 — CDOR convex dimension-order routing: delivery,
// containment in the active region, minimal-progress bounds, the paper's
// NE-turn example, deadlock freedom via channel-dependency-graph analysis,
// and equivalence with XY-DOR on the full mesh.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sprint/cdor.hpp"
#include "sprint/topology.hpp"

namespace nocs::sprint {
namespace {

/// Walks a CDOR route, asserting every intermediate node is active and the
/// walk terminates; returns the visited coordinates (including endpoints).
std::vector<Coord> walk(const CdorRouting& rf, const MeshShape& mesh,
                        Coord src, Coord dst) {
  std::vector<Coord> path = {src};
  Coord cur = src;
  const int budget = 3 * (mesh.width() + mesh.height());
  while (cur != dst) {
    const Port p = rf.route(cur, dst);
    EXPECT_NE(p, Port::kLocal);
    cur = step(cur, p);
    EXPECT_TRUE(mesh.contains(cur));
    EXPECT_TRUE(rf.is_active(mesh.id_of(cur)))
        << "route entered dark node " << to_string(cur);
    path.push_back(cur);
    EXPECT_LE(static_cast<int>(path.size()), budget)
        << "livelock " << to_string(src) << "->" << to_string(dst);
    if (static_cast<int>(path.size()) > budget) return path;
  }
  return path;
}

class CdorSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CdorSweep, DeliversAllActivePairsInsideRegion) {
  const auto [w, h, corner] = GetParam();
  const MeshShape mesh(w, h);
  const NodeId master = std::vector<NodeId>{
      0, w - 1, w * (h - 1), w * h - 1}[static_cast<std::size_t>(corner)];
  const std::vector<NodeId> order = sprint_order(mesh, master);
  for (int level = 1; level <= mesh.size(); ++level) {
    const std::vector<NodeId> active(order.begin(), order.begin() + level);
    const CdorRouting rf(mesh, active, master);
    for (NodeId s : active) {
      for (NodeId d : active) {
        if (s == d) {
          EXPECT_EQ(rf.route(mesh.coord_of(s), mesh.coord_of(d)),
                    Port::kLocal);
          continue;
        }
        const auto path = walk(rf, mesh, mesh.coord_of(s), mesh.coord_of(d));
        // The detour is bounded: at most one extra leg up to the master
        // row and back — never more than width+height hops total here.
        EXPECT_LE(static_cast<int>(path.size()) - 1, w + h);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MeshesMastersLevels, CdorSweep,
    ::testing::Combine(::testing::Values(2, 4, 6), ::testing::Values(2, 4, 5),
                       ::testing::Values(0, 1, 2, 3)));

TEST(Cdor, EqualsXyDorOnFullMesh) {
  const MeshShape mesh(4, 4);
  const CdorRouting cdor(mesh, mesh.all_nodes(), 0);
  const noc::XyRouting xy;
  for (NodeId s = 0; s < mesh.size(); ++s)
    for (NodeId d = 0; d < mesh.size(); ++d)
      EXPECT_EQ(cdor.route(mesh.coord_of(s), mesh.coord_of(d)),
                xy.route(mesh.coord_of(s), mesh.coord_of(d)))
          << s << "->" << d;
}

TEST(Cdor, MinimalWhenEastIsConnected) {
  // Within a full rectangle subset the route length equals Manhattan
  // distance (no detours needed).
  const MeshShape mesh(4, 4);
  const std::vector<NodeId> block = {0, 1, 4, 5};  // 2x2
  const CdorRouting rf(mesh, block, 0);
  for (NodeId s : block) {
    for (NodeId d : block) {
      if (s != d) {
        EXPECT_EQ(static_cast<int>(
                      walk(rf, mesh, mesh.coord_of(s), mesh.coord_of(d))
                          .size()) - 1,
                  manhattan(mesh.coord_of(s), mesh.coord_of(d)));
      }
    }
  }
}

TEST(Cdor, PaperNeTurnExample) {
  // Paper Figure 5a: in the 8-core region {0,1,4,5,2,8,6,9}, routing from
  // node 9 (1,2) eastwards is blocked (node 10 dark), so the packet goes
  // north to node 5 and turns east there — the NE turn.
  const MeshShape mesh(4, 4);
  const CdorRouting rf(mesh, active_set(mesh, 8, 0), 0);
  EXPECT_FALSE(rf.connectivity_east(9));  // (2,2) is dark
  EXPECT_EQ(rf.route(mesh.coord_of(9), mesh.coord_of(6)), Port::kNorth);
  // At node 5 (1,1) east is connected: the NE turn completes.
  EXPECT_TRUE(rf.connectivity_east(5));
  EXPECT_EQ(rf.route(mesh.coord_of(5), mesh.coord_of(6)), Port::kEast);
  const auto path = walk(rf, mesh, mesh.coord_of(9), mesh.coord_of(6));
  const std::vector<Coord> expect = {{1, 2}, {1, 1}, {2, 1}};
  EXPECT_EQ(path, expect);
}

TEST(Cdor, ConnectivityBits) {
  const MeshShape mesh(4, 4);
  const CdorRouting rf(mesh, active_set(mesh, 8, 0), 0);
  // Region rows: y=0 -> {0,1,2}, y=1 -> {4,5,6}, y=2 -> {8,9}.
  EXPECT_TRUE(rf.connectivity_east(0));
  EXPECT_TRUE(rf.connectivity_east(1));
  EXPECT_FALSE(rf.connectivity_east(2));   // node 3 dark
  EXPECT_TRUE(rf.connectivity_west(1));
  EXPECT_FALSE(rf.connectivity_west(0));   // mesh edge
  EXPECT_TRUE(rf.connectivity_east(8));
  EXPECT_FALSE(rf.connectivity_east(9));   // node 10 dark
  EXPECT_FALSE(rf.connectivity_east(15));  // dark node has no connectivity
}

class CdorDeadlock : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CdorDeadlock, FreeByChannelDependencyGraph) {
  // Build the channel-dependency graph over directed links: for every
  // active (src,dst) pair, each consecutive link pair on the route adds a
  // dependency edge.  Deadlock freedom (Dally-Seitz) <=> the CDG is
  // acyclic.  Verify at every sprint level.
  const auto [w, h] = GetParam();
  const MeshShape mesh(w, h);
  const std::vector<NodeId> order = sprint_order(mesh, 0);
  for (int level = 2; level <= mesh.size(); ++level) {
    const std::vector<NodeId> active(order.begin(), order.begin() + level);
    const CdorRouting rf(mesh, active, 0);

    using Link = std::pair<NodeId, NodeId>;
    std::map<Link, int> link_ids;
    std::vector<std::vector<int>> deps;
    auto link_id = [&](NodeId a, NodeId b) {
      const auto [it, inserted] =
          link_ids.try_emplace({a, b}, static_cast<int>(link_ids.size()));
      if (inserted) deps.emplace_back();
      return it->second;
    };

    for (NodeId s : active) {
      for (NodeId d : active) {
        if (s == d) continue;
        Coord cur = mesh.coord_of(s);
        const Coord dst = mesh.coord_of(d);
        int prev_link = -1;
        while (cur != dst) {
          const Coord next = step(cur, rf.route(cur, dst));
          const int l = link_id(mesh.id_of(cur), mesh.id_of(next));
          if (prev_link >= 0)
            deps[static_cast<std::size_t>(prev_link)].push_back(l);
          prev_link = l;
          cur = next;
        }
      }
    }

    // DFS cycle detection.
    enum class Mark { kWhite, kGray, kBlack };
    std::vector<Mark> mark(deps.size(), Mark::kWhite);
    bool cyclic = false;
    std::function<void(int)> dfs = [&](int u) {
      mark[static_cast<std::size_t>(u)] = Mark::kGray;
      for (int v : deps[static_cast<std::size_t>(u)]) {
        if (mark[static_cast<std::size_t>(v)] == Mark::kGray) cyclic = true;
        else if (mark[static_cast<std::size_t>(v)] == Mark::kWhite) dfs(v);
        if (cyclic) return;
      }
      mark[static_cast<std::size_t>(u)] = Mark::kBlack;
    };
    for (int u = 0; u < static_cast<int>(deps.size()) && !cyclic; ++u)
      if (mark[static_cast<std::size_t>(u)] == Mark::kWhite) dfs(u);

    EXPECT_FALSE(cyclic) << "CDG cycle at sprint level " << level;
  }
}

INSTANTIATE_TEST_SUITE_P(Meshes, CdorDeadlock,
                         ::testing::Values(std::pair{4, 4}, std::pair{5, 3},
                                           std::pair{6, 6}, std::pair{8, 8}));

TEST(Cdor, ReflectedMastersRouteWithinRegion) {
  // Master at the bottom-right corner: the region grows toward the
  // top-left; routing must stay inside it (reflection correctness).
  const MeshShape mesh(4, 4);
  const NodeId master = 15;
  const std::vector<NodeId> active = active_set(mesh, 6, master);
  const CdorRouting rf(mesh, active, master);
  for (NodeId s : active)
    for (NodeId d : active)
      if (s != d) walk(rf, mesh, mesh.coord_of(s), mesh.coord_of(d));
}

TEST(Cdor, RejectsNonStaircaseRegion) {
  const MeshShape mesh(4, 4);
  // {0, 2}: row gap — not a valid CDOR region.
  EXPECT_DEATH(CdorRouting(mesh, {0, 2}, 0), "precondition");
  // Master missing from the set.
  EXPECT_DEATH(CdorRouting(mesh, {1, 2}, 0), "precondition");
  // Master not a corner.
  EXPECT_DEATH(CdorRouting(mesh, {5, 6}, 5), "precondition");
}

TEST(Cdor, RejectsDarkEndpoints) {
  const MeshShape mesh(4, 4);
  const CdorRouting rf(mesh, active_set(mesh, 4, 0), 0);
  EXPECT_DEATH(rf.route(mesh.coord_of(15), mesh.coord_of(0)),
               "precondition");
  EXPECT_DEATH(rf.route(mesh.coord_of(0), mesh.coord_of(15)),
               "precondition");
}

TEST(Cdor, Name) {
  const MeshShape mesh(4, 4);
  const CdorRouting rf(mesh, active_set(mesh, 4, 0), 0);
  EXPECT_STREQ(rf.name(), "cdor");
}

}  // namespace
}  // namespace nocs::sprint
