// Tests for the latched channels (Pipe) and VC buffers.
#include <gtest/gtest.h>

#include "noc/buffer.hpp"
#include "noc/channel.hpp"

namespace nocs::noc {
namespace {

TEST(Pipe, ValueInvisibleBeforeLatency) {
  Pipe<int> p(2);
  p.push(/*now=*/10, 42);
  EXPECT_FALSE(p.ready(10));
  EXPECT_FALSE(p.ready(11));
  EXPECT_TRUE(p.ready(12));
  EXPECT_TRUE(p.ready(20));  // stays ready until popped
  EXPECT_EQ(p.pop(12), 42);
  EXPECT_FALSE(p.ready(12));
}

TEST(Pipe, FifoOrder) {
  Pipe<int> p(1);
  p.push(0, 1);
  p.push(0, 2);
  p.push(1, 3);
  EXPECT_EQ(p.pop(5), 1);
  EXPECT_EQ(p.pop(5), 2);
  EXPECT_EQ(p.pop(5), 3);
  EXPECT_TRUE(p.empty());
}

TEST(Pipe, FrontPeeksWithoutConsuming) {
  Pipe<int> p(1);
  p.push(0, 9);
  EXPECT_EQ(p.front(1), 9);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.pop(1), 9);
}

TEST(Pipe, ZeroLatencyImmediatelyVisible) {
  Pipe<int> p(0);
  p.push(5, 7);
  EXPECT_TRUE(p.ready(5));
}

TEST(Pipe, PopBeforeReadyDies) {
  Pipe<int> p(3);
  p.push(0, 1);
  EXPECT_DEATH(p.pop(1), "precondition");
}

TEST(Pipe, MultipleReadyAtSameCycle) {
  Pipe<int> p(1);
  p.push(0, 10);
  p.push(0, 20);
  int drained = 0;
  while (p.ready(1)) {
    p.pop(1);
    ++drained;
  }
  EXPECT_EQ(drained, 2);
}

TEST(Pipe, RingGrowsPastInitialCapacityPreservingOrder) {
  // The ring starts sized for the steady state (latency+1 slots).  Bursts
  // beyond that must transparently grow without reordering.
  Pipe<int> p(1);
  for (int i = 0; i < 37; ++i) p.push(/*now=*/static_cast<Cycle>(i), i);
  EXPECT_EQ(p.size(), 37u);
  for (int i = 0; i < 37; ++i) EXPECT_EQ(p.pop(100), i);
  EXPECT_TRUE(p.empty());
}

TEST(Pipe, NextReadyTimeTracksTheFront) {
  Pipe<int> p(3);
  EXPECT_EQ(p.next_ready_time(), kNoPendingEvent);
  p.push(10, 1);
  p.push(12, 2);
  EXPECT_EQ(p.next_ready_time(), 13u);  // first push arrives at 10+3
  p.pop(13);
  EXPECT_EQ(p.next_ready_time(), 15u);  // second arrives at 12+3
  p.pop(15);
  EXPECT_EQ(p.next_ready_time(), kNoPendingEvent);
}

TEST(Pipe, NotifiesSinkOnlyWhenEmptyBecomesNonEmpty) {
  struct CountingSink final : WakeSink {
    int notifications = 0;
    Cycle last_ready = 0;
    void on_push(Cycle ready_at) override {
      ++notifications;
      last_ready = ready_at;
    }
  } sink;
  Pipe<int> p(2);
  p.set_sink(&sink);
  p.push(5, 1);  // empty -> non-empty: notify
  EXPECT_EQ(sink.notifications, 1);
  EXPECT_EQ(sink.last_ready, 7u);
  p.push(6, 2);  // already non-empty: consumer is armed, no notify
  p.push(7, 3);
  EXPECT_EQ(sink.notifications, 1);
  p.pop(7);
  p.pop(8);
  p.pop(9);
  p.push(20, 4);  // drained back to empty: notify again
  EXPECT_EQ(sink.notifications, 2);
  EXPECT_EQ(sink.last_ready, 22u);
}

TEST(VcBuffer, PushPopFifo) {
  VcBuffer b(4);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.capacity(), 4);
  Flit f;
  for (int i = 0; i < 4; ++i) {
    f.index = i;
    b.push(f);
  }
  EXPECT_TRUE(b.full());
  EXPECT_EQ(b.size(), 4);
  EXPECT_EQ(b.front().index, 0);
  EXPECT_EQ(b.pop().index, 0);
  EXPECT_EQ(b.pop().index, 1);
  EXPECT_FALSE(b.full());
  EXPECT_EQ(b.size(), 2);
}

TEST(VcBuffer, RingWrapsAroundPastCapacity) {
  // Steady-state wormhole traffic: a ring of capacity 4 sees far more than
  // 4 flits stream through.  FIFO order must survive head wrapping.
  VcBuffer b(4);
  Flit f;
  int next_push = 0;
  int next_pop = 0;
  // Prime with 3 so head sits mid-ring, then cycle push/pop 100 times.
  for (; next_push < 3; ++next_push) {
    f.index = next_push;
    b.push(f);
  }
  for (int step = 0; step < 100; ++step) {
    f.index = next_push++;
    b.push(f);
    EXPECT_EQ(b.pop().index, next_pop++);
  }
  EXPECT_EQ(b.size(), 3);
  while (!b.empty()) EXPECT_EQ(b.pop().index, next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(VcBuffer, RepeatedFillDrainCycles) {
  VcBuffer b(2);
  Flit f;
  for (int cycle = 0; cycle < 50; ++cycle) {
    f.index = 2 * cycle;
    b.push(f);
    f.index = 2 * cycle + 1;
    b.push(f);
    EXPECT_TRUE(b.full());
    EXPECT_EQ(b.front().index, 2 * cycle);
    EXPECT_EQ(b.pop().index, 2 * cycle);
    EXPECT_EQ(b.pop().index, 2 * cycle + 1);
    EXPECT_TRUE(b.empty());
  }
}

TEST(VcBuffer, CapacityOneBehavesLikeALatch) {
  VcBuffer b(1);
  Flit f;
  for (int i = 0; i < 10; ++i) {
    f.index = i;
    b.push(f);
    EXPECT_TRUE(b.full());
    EXPECT_EQ(b.pop().index, i);
    EXPECT_TRUE(b.empty());
  }
}

TEST(VcBuffer, OverflowIsAProtocolBug) {
  VcBuffer b(1);
  b.push(Flit{});
  EXPECT_DEATH(b.push(Flit{}), "invariant");
}

TEST(VcBuffer, PopEmptyDies) {
  VcBuffer b(2);
  EXPECT_DEATH(b.pop(), "precondition");
}

}  // namespace
}  // namespace nocs::noc
