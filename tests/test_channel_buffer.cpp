// Tests for the latched channels (Pipe) and VC buffers.
#include <gtest/gtest.h>

#include "noc/buffer.hpp"
#include "noc/channel.hpp"

namespace nocs::noc {
namespace {

TEST(Pipe, ValueInvisibleBeforeLatency) {
  Pipe<int> p(2);
  p.push(/*now=*/10, 42);
  EXPECT_FALSE(p.ready(10));
  EXPECT_FALSE(p.ready(11));
  EXPECT_TRUE(p.ready(12));
  EXPECT_TRUE(p.ready(20));  // stays ready until popped
  EXPECT_EQ(p.pop(12), 42);
  EXPECT_FALSE(p.ready(12));
}

TEST(Pipe, FifoOrder) {
  Pipe<int> p(1);
  p.push(0, 1);
  p.push(0, 2);
  p.push(1, 3);
  EXPECT_EQ(p.pop(5), 1);
  EXPECT_EQ(p.pop(5), 2);
  EXPECT_EQ(p.pop(5), 3);
  EXPECT_TRUE(p.empty());
}

TEST(Pipe, FrontPeeksWithoutConsuming) {
  Pipe<int> p(1);
  p.push(0, 9);
  EXPECT_EQ(p.front(1), 9);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.pop(1), 9);
}

TEST(Pipe, ZeroLatencyImmediatelyVisible) {
  Pipe<int> p(0);
  p.push(5, 7);
  EXPECT_TRUE(p.ready(5));
}

TEST(Pipe, PopBeforeReadyDies) {
  Pipe<int> p(3);
  p.push(0, 1);
  EXPECT_DEATH(p.pop(1), "precondition");
}

TEST(Pipe, MultipleReadyAtSameCycle) {
  Pipe<int> p(1);
  p.push(0, 10);
  p.push(0, 20);
  int drained = 0;
  while (p.ready(1)) {
    p.pop(1);
    ++drained;
  }
  EXPECT_EQ(drained, 2);
}

TEST(VcBuffer, PushPopFifo) {
  VcBuffer b(4);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.capacity(), 4);
  Flit f;
  for (int i = 0; i < 4; ++i) {
    f.index = i;
    b.push(f);
  }
  EXPECT_TRUE(b.full());
  EXPECT_EQ(b.size(), 4);
  EXPECT_EQ(b.front().index, 0);
  EXPECT_EQ(b.pop().index, 0);
  EXPECT_EQ(b.pop().index, 1);
  EXPECT_FALSE(b.full());
  EXPECT_EQ(b.size(), 2);
}

TEST(VcBuffer, OverflowIsAProtocolBug) {
  VcBuffer b(1);
  b.push(Flit{});
  EXPECT_DEATH(b.push(Flit{}), "invariant");
}

TEST(VcBuffer, PopEmptyDies) {
  VcBuffer b(2);
  EXPECT_DEATH(b.pop(), "precondition");
}

}  // namespace
}  // namespace nocs::noc
