// Tests for the dim-sprinting planner.
#include <gtest/gtest.h>

#include "sprint/dim_sprint.hpp"

namespace nocs::sprint {
namespace {

class DimTest : public ::testing::Test {
 protected:
  DimTest()
      : perf_(16),
        chip_(power::ChipPowerParams{}),
        pcm_(thermal::PcmParams{}),
        planner_(perf_, chip_, pcm_,
                 {{1.0, 2.0e9}, {0.9, 1.5e9}, {0.75, 1.0e9}}) {}

  cmp::PerfModel perf_;
  power::ChipPowerModel chip_;
  thermal::PcmModel pcm_;
  DimSprintPlanner planner_;
};

TEST_F(DimTest, ReferencePointReproducesReferenceCorePower) {
  EXPECT_NEAR(planner_.core_power_at(power::kReferencePoint),
              chip_.params().core_active, 1e-12);
}

TEST_F(DimTest, LowerOperatingPointLowerCorePower) {
  const Watts hi = planner_.core_power_at({1.0, 2.0e9});
  const Watts mid = planner_.core_power_at({0.9, 1.5e9});
  const Watts lo = planner_.core_power_at({0.75, 1.0e9});
  EXPECT_GT(hi, mid);
  EXPECT_GT(mid, lo);
  // Dynamic portion scales with V^2 f: at (0.75, 1 GHz) the dynamic part
  // drops to 0.28x, so total must be well under half.
  EXPECT_LT(lo, 0.5 * hi);
}

TEST_F(DimTest, ChipPowerMonotonicInLevel) {
  for (const power::OperatingPoint op :
       {power::OperatingPoint{1.0, 2.0e9}, power::OperatingPoint{0.75, 1.0e9}}) {
    double prev = 0.0;
    for (int level : {1, 4, 8, 16}) {
      const Watts p = planner_.chip_power_at(level, op);
      EXPECT_GT(p, prev);
      prev = p;
    }
  }
}

TEST_F(DimTest, ChipPowerAtReferenceMatchesControllerModel) {
  // At max V/f the dim planner's chip power must agree with the
  // ChipPowerModel-based accounting used everywhere else.
  const auto& p = chip_.params();
  const Watts expected = chip_.core_power(4, power::CoreState::kGated) +
                         chip_.noc_power(4) + p.l2_tile * 16 +
                         p.mc_each * p.num_mcs() + p.others;
  EXPECT_NEAR(planner_.chip_power_at(4, power::kReferencePoint), expected,
              1e-9);
}

TEST_F(DimTest, ExecSecondsStretchWithFrequency) {
  const auto suite = cmp::parsec_suite(16);
  const auto& w = suite.front();
  const double at_2g = planner_.exec_seconds(w, 8, {1.0, 2.0e9});
  const double at_1g = planner_.exec_seconds(w, 8, {0.75, 1.0e9});
  EXPECT_NEAR(at_1g / at_2g, 2.0, 1e-9);
}

TEST_F(DimTest, EnumerateCoversLevelsTimesOps) {
  const auto suite = cmp::parsec_suite(16);
  const auto options = planner_.enumerate(suite.front());
  EXPECT_EQ(options.size(), 3u * 16u);
  for (const DimOption& o : options) {
    EXPECT_GE(o.level, 1);
    EXPECT_LE(o.level, 16);
    EXPECT_GT(o.chip_power, 0.0);
    EXPECT_GT(o.exec_seconds, 0.0);
    EXPECT_GT(o.sprint_duration, 0.0);
  }
}

TEST_F(DimTest, BestRespectsBudget) {
  const auto suite = cmp::parsec_suite(16);
  for (const auto& w : suite) {
    for (Watts budget : {25.0, 40.0, 60.0, 100.0}) {
      const DimOption best = planner_.best_under_budget(w, budget);
      EXPECT_LE(best.chip_power, budget) << w.name;
    }
  }
}

TEST_F(DimTest, UnlimitedBudgetMatchesOfflineOptimum) {
  // With no budget pressure, the best dim option is the paper's policy:
  // the perf-model optimum at maximum V/f.
  const auto suite = cmp::parsec_suite(16);
  for (const auto& w : suite) {
    const DimOption best = planner_.best_under_budget(w, 1e9);
    EXPECT_EQ(best.level, perf_.optimal_level(w)) << w.name;
    EXPECT_DOUBLE_EQ(best.op.frequency, 2.0e9) << w.name;
  }
}

TEST_F(DimTest, TightBudgetCanPreferDimWidth) {
  // At a tight budget a perfectly-scaling workload takes more, slower
  // cores (verified against the ablation bench's finding).
  cmp::WorkloadParams w;
  w.name = "embarrassing";
  w.serial_frac = 0.01;
  w.alpha = 0.0;
  w.beta = 0.0;
  w.injection_rate = 0.1;
  const DimOption best = planner_.best_under_budget(w, 25.0);
  const DimSprintPlanner dark(perf_, chip_, pcm_, {{1.0, 2.0e9}});
  const DimOption dark_best = dark.best_under_budget(w, 25.0);
  EXPECT_LE(best.exec_seconds, dark_best.exec_seconds + 1e-12);
  EXPECT_GE(best.level, dark_best.level);
}

TEST_F(DimTest, ImpossibleBudgetDies) {
  const auto suite = cmp::parsec_suite(16);
  EXPECT_DEATH(planner_.best_under_budget(suite.front(), 1.0),
               "precondition");
}

TEST_F(DimTest, DurationLongerAtLowerPower) {
  const auto suite = cmp::parsec_suite(16);
  const auto& w = suite.front();
  const auto options = planner_.enumerate(w);
  for (const DimOption& a : options) {
    for (const DimOption& b : options) {
      if (a.chip_power < b.chip_power) {
        EXPECT_GE(a.sprint_duration, b.sprint_duration);
      }
    }
  }
}

}  // namespace
}  // namespace nocs::sprint
