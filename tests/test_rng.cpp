// Tests for the deterministic xoshiro256** generator.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace nocs {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const std::uint64_t first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntInBound) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform_int(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, UniformIntBoundOneAlwaysZero) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(13);
  bool lo_hit = false, hi_hit = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    lo_hit = lo_hit || v == -3;
    hi_hit = hi_hit || v == 3;
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(SplitMix, ExpandsDistinctStates) {
  SplitMix64 sm(0);
  const std::uint64_t a = sm.next();
  const std::uint64_t b = sm.next();
  EXPECT_NE(a, b);
  // Zero seed must not produce a stuck-at-zero xoshiro state.
  Rng rng(0);
  EXPECT_NE(rng.next() | rng.next() | rng.next(), 0u);
}

}  // namespace
}  // namespace nocs
