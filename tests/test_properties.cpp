// Cross-cutting property tests: CDOR path-length bounds against true
// shortest paths, switch-allocator fairness, credit conservation, thermal
// energy balance, and per-class latency structure.
#include <gtest/gtest.h>

#include <queue>

#include "noc/simulator.hpp"
#include "sprint/cdor.hpp"
#include "sprint/topology.hpp"
#include "thermal/grid.hpp"

namespace nocs {
namespace {

/// BFS shortest-path distance between two nodes constrained to `active`.
int bfs_distance(const MeshShape& mesh, const std::vector<bool>& active,
                 NodeId src, NodeId dst) {
  std::vector<int> dist(static_cast<std::size_t>(mesh.size()), -1);
  std::queue<NodeId> q;
  dist[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    if (u == dst) return dist[static_cast<std::size_t>(u)];
    const Coord c = mesh.coord_of(u);
    for (Port p : {Port::kNorth, Port::kEast, Port::kSouth, Port::kWest}) {
      const Coord nc = step(c, p);
      if (!mesh.contains(nc)) continue;
      const NodeId v = mesh.id_of(nc);
      if (!active[static_cast<std::size_t>(v)] ||
          dist[static_cast<std::size_t>(v)] >= 0)
        continue;
      dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
      q.push(v);
    }
  }
  return dist[static_cast<std::size_t>(dst)];
}

TEST(CdorPathQuality, WithinRegionDetourBound) {
  // CDOR is not always minimal (the north detour), but on the paper's
  // convex regions it must stay within a small additive detour of the
  // in-region shortest path — and be exactly minimal for most pairs.
  const MeshShape mesh(4, 4);
  const auto order = sprint::sprint_order(mesh, 0);
  for (int level = 2; level <= 16; ++level) {
    const std::vector<NodeId> active(order.begin(), order.begin() + level);
    std::vector<bool> mask(16, false);
    for (NodeId id : active) mask[static_cast<std::size_t>(id)] = true;
    const sprint::CdorRouting rf(mesh, active, 0);

    int minimal_pairs = 0, total_pairs = 0;
    for (NodeId s : active) {
      for (NodeId d : active) {
        if (s == d) continue;
        Coord cur = mesh.coord_of(s);
        const Coord dst = mesh.coord_of(d);
        int hops = 0;
        while (cur != dst) {
          cur = step(cur, rf.route(cur, dst));
          ++hops;
          ASSERT_LE(hops, 32);
        }
        const int shortest = bfs_distance(mesh, mask, s, d);
        ASSERT_GE(shortest, 0);
        EXPECT_LE(hops, shortest + 4)
            << s << "->" << d << " level " << level;
        ++total_pairs;
        if (hops == shortest) ++minimal_pairs;
      }
    }
    // The vast majority of pairs route minimally.
    EXPECT_GE(minimal_pairs * 10, total_pairs * 8) << "level " << level;
  }
}

TEST(SwitchAllocator, FairBetweenCompetingInputs) {
  // Two NIs flood packets through a shared output; neither may starve:
  // ejected flit counts stay within 3:1 of each other.
  noc::NetworkParams p;
  noc::XyRouting xy;
  noc::Network net(p, &xy);
  // Nodes 0 and 8 both send to 3 repeatedly (share router 1,2's east links).
  for (int i = 0; i < 100; ++i) {
    net.ni(0).send_packet(net.now(), 3);
    net.ni(8).send_packet(net.now(), 3);
  }
  // Track which source's flits arrive over a bounded horizon.
  for (int i = 0; i < 3000 && !net.drained(); ++i) net.tick();
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.ni(3).total_ejected_flits(), 2u * 100u * 5u);
}

TEST(CreditConservation, FullCreditsAfterDrain) {
  noc::NetworkParams p;
  noc::XyRouting xy;
  noc::Network net(p, &xy);
  net.set_endpoints(net.params().shape().all_nodes(),
                    noc::make_traffic("uniform", 16));
  net.set_injection_rate(0.25);
  net.set_seed(61);
  net.run(3000);
  net.set_injection_rate(0.0);
  for (int i = 0; i < 50000 && !net.drained(); ++i) net.tick();
  ASSERT_TRUE(net.drained());
  // Let in-flight credits land.
  net.run(5);
  const int full = kNumPorts * p.num_vcs * p.vc_depth;
  for (NodeId id = 0; id < net.num_nodes(); ++id)
    EXPECT_EQ(net.router(id).total_output_credits(), full) << "node " << id;
}

TEST(ThermalEnergyBalance, TransientConservesEnergy) {
  // Over a transient window: energy_in = power * t must equal stored
  // energy (sum C dT) plus energy leaked to ambient (integrated g_vert
  // flow).  We verify the weaker but binding corollary: stored energy
  // never exceeds injected energy, and approaches injected energy for
  // windows much shorter than the thermal time constant.
  thermal::GridThermalParams gp;
  gp.c_per_area = 16500.0;  // slow thermals
  const thermal::GridThermalModel model(gp, 12.0, 12.0);
  thermal::Floorplan fp(12.0, 12.0);
  fp.add_block({"all", 0.0, 0.0, 12.0, 12.0, 50.0});

  auto stored = [&](const thermal::TemperatureField& f) {
    // C per die cell * sum of rises (border cells excluded: conservative).
    const double cell_area = (12.0e-3 / 32) * (12.0e-3 / 32);
    const double c_cell = gp.c_per_area * cell_area;
    double sum = 0.0;
    for (int y = 0; y < f.die_cells_y(); ++y)
      for (int x = 0; x < f.die_cells_x(); ++x)
        sum += (f.at(x, y) - gp.ambient) * c_cell;
    return sum;
  };

  thermal::TemperatureField field = model.ambient_field();
  const Seconds dt = 0.02;  // << tau ~ 0.7s
  model.step_transient(fp, field, dt);
  const double injected = 50.0 * dt;
  const double kept = stored(field);
  EXPECT_LE(kept, injected * 1.001);
  EXPECT_GT(kept, 0.6 * injected);  // little leaked or spread yet
}

TEST(PerClassLatency, RepliesSlowerThanRequests) {
  // 5-flit replies serialize longer than 1-flit requests, so class-1
  // latency must exceed class-0 latency.
  noc::NetworkParams p;
  p.num_classes = 2;
  noc::XyRouting xy;
  noc::Network net(p, &xy);
  net.set_request_reply(1, 5);
  net.set_endpoints(net.params().shape().all_nodes(),
                    noc::make_traffic("uniform", 16));
  net.set_seed(9);
  noc::SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 6000;
  cfg.injection_rate = 0.05;
  run_simulation(net, cfg);
  const auto& s = net.stats();
  ASSERT_GT(s.class_latency(0).count(), 100u);
  ASSERT_GT(s.class_latency(1).count(), 100u);
  EXPECT_GT(s.class_latency(1).mean(), s.class_latency(0).mean() + 2.0);
}

TEST(PerClassLatency, SingleClassTrafficOnlyPopulatesClassZero) {
  noc::NetworkParams p;
  noc::XyRouting xy;
  noc::Network net(p, &xy);
  net.set_endpoints(net.params().shape().all_nodes(),
                    noc::make_traffic("uniform", 16));
  net.set_seed(10);
  noc::SimConfig cfg;
  cfg.warmup = 200;
  cfg.measure = 2000;
  cfg.injection_rate = 0.1;
  run_simulation(net, cfg);
  EXPECT_GT(net.stats().class_latency(0).count(), 0u);
  EXPECT_EQ(net.stats().class_latency(1).count(), 0u);
}

}  // namespace
}  // namespace nocs
