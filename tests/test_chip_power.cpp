// Tests for the McPAT-style chip power model, including the Figure 3
// NoC-share calibration.
#include <gtest/gtest.h>

#include "power/chip_power.hpp"

namespace nocs::power {
namespace {

TEST(ChipPower, BreakdownSumsToTotal) {
  const ChipPowerModel m(ChipPowerParams{});
  const ChipPowerBreakdown b = m.nominal();
  EXPECT_NEAR(b.total(), b.cores + b.l2 + b.noc + b.mc + b.others, 1e-12);
}

TEST(ChipPower, Fig3NocShares) {
  // Paper: 18% / 26% / 35% / 42% for 4/8/16/32 cores at nominal.
  const double expected[] = {0.18, 0.26, 0.35, 0.42};
  const int cores[] = {4, 8, 16, 32};
  for (int i = 0; i < 4; ++i) {
    ChipPowerParams p;
    p.num_cores = cores[i];
    const ChipPowerBreakdown b = ChipPowerModel(p).nominal();
    EXPECT_NEAR(b.noc / b.total(), expected[i], 0.025)
        << cores[i] << " cores";
  }
}

TEST(ChipPower, NocShareMonotonicInCoreCount) {
  double prev = 0.0;
  for (int n : {4, 8, 16, 32, 64}) {
    ChipPowerParams p;
    p.num_cores = n;
    const ChipPowerBreakdown b = ChipPowerModel(p).nominal();
    const double share = b.noc / b.total();
    EXPECT_GT(share, prev);
    prev = share;
  }
}

TEST(ChipPower, ActiveCoreShareShrinksWithDarkSilicon) {
  double prev = 1.0;
  for (int n : {4, 8, 16, 32}) {
    ChipPowerParams p;
    p.num_cores = n;
    const ChipPowerBreakdown b = ChipPowerModel(p).nominal();
    const double share = b.cores / b.total();
    EXPECT_LT(share, prev);
    prev = share;
  }
}

TEST(ChipPower, CorePowerByState) {
  ChipPowerParams p;
  const ChipPowerModel m(p);
  EXPECT_DOUBLE_EQ(m.core_power(16, CoreState::kGated), 16 * p.core_active);
  EXPECT_DOUBLE_EQ(m.core_power(0, CoreState::kGated), 16 * p.core_gated);
  EXPECT_DOUBLE_EQ(m.core_power(4, CoreState::kIdle),
                   4 * p.core_active + 12 * p.core_idle);
  EXPECT_DOUBLE_EQ(m.core_power(4, CoreState::kGated),
                   4 * p.core_active + 12 * p.core_gated);
  // Gating strictly beats idling for the same sprint level.
  EXPECT_LT(m.core_power(4, CoreState::kGated),
            m.core_power(4, CoreState::kIdle));
}

TEST(ChipPower, NocPowerByActiveNodes) {
  ChipPowerParams p;
  const ChipPowerModel m(p);
  EXPECT_DOUBLE_EQ(m.noc_power(16), 16 * p.noc_per_node);
  EXPECT_DOUBLE_EQ(m.noc_power(0), 16 * p.noc_gated_node);
  EXPECT_LT(m.noc_power(4), m.noc_power(16));
}

TEST(ChipPower, BreakdownMatchesStates) {
  ChipPowerParams p;
  const ChipPowerModel m(p);
  std::vector<CoreState> cores(16, CoreState::kGated);
  cores[0] = cores[1] = CoreState::kActive;
  cores[2] = CoreState::kIdle;
  std::vector<bool> gated(16, true);
  gated[0] = gated[1] = false;
  const ChipPowerBreakdown b = m.breakdown(cores, gated);
  EXPECT_NEAR(b.cores, 2 * p.core_active + p.core_idle + 13 * p.core_gated,
              1e-9);
  EXPECT_NEAR(b.noc, 2 * p.noc_per_node + 14 * p.noc_gated_node, 1e-9);
  EXPECT_NEAR(b.l2, 16 * p.l2_tile, 1e-9);  // L2 never gated
}

TEST(ChipPower, BreakdownWithExternalNoc) {
  const ChipPowerModel m(ChipPowerParams{});
  const std::vector<CoreState> cores(16, CoreState::kActive);
  const ChipPowerBreakdown b = m.breakdown_with_noc(cores, 3.21);
  EXPECT_DOUBLE_EQ(b.noc, 3.21);
}

TEST(ChipPower, McCountScalesWithCores) {
  ChipPowerParams p;
  p.cores_per_mc = 16;
  p.num_cores = 4;
  EXPECT_EQ(p.num_mcs(), 1);
  p.num_cores = 32;
  EXPECT_EQ(p.num_mcs(), 2);
  p.num_cores = 64;
  EXPECT_EQ(p.num_mcs(), 4);
}

TEST(ChipPower, ValidationRejectsNonsense) {
  ChipPowerParams p;
  p.core_idle = p.core_active + 1.0;  // idle hotter than active
  EXPECT_DEATH(ChipPowerModel{p}, "precondition");
}

TEST(ChipPower, WrongVectorSizeDies) {
  const ChipPowerModel m(ChipPowerParams{});
  const std::vector<CoreState> wrong(8, CoreState::kActive);
  EXPECT_DEATH(m.breakdown_with_noc(wrong, 1.0), "precondition");
}

}  // namespace
}  // namespace nocs::power
