// Thread pool, deterministic per-task seeding, and the golden guarantee of
// the parallel sweep drivers: results are bit-identical to the serial loop
// for any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "noc/parallel_sweep.hpp"
#include "sprint/network_builder.hpp"

namespace nocs {
namespace {

// --- ParallelFor / run_tasks / ThreadPool --------------------------------

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  ParallelFor(kN, [&](std::size_t i) { ++visits[i]; }, 4);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsANoop) {
  ParallelFor(0, [](std::size_t) { FAIL() << "body must not run"; }, 4);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  // With one worker the body runs on the calling thread in index order.
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  ParallelFor(
      8,
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
      },
      1);
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      ParallelFor(
          16,
          [](std::size_t i) {
            if (i == 7) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(RunTasks, RunsEveryTask) {
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) tasks.push_back([&] { ++ran; });
  run_tasks(tasks, 3);
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) pool.submit([&] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, PriorityLanesDrainHighBeforeNormalBeforeLow) {
  ThreadPool pool(1);  // one worker serializes execution order
  std::atomic<bool> release{false};
  std::mutex mu;
  std::vector<int> order;
  // Park the worker so the lanes fill up before anything dequeues.
  pool.submit([&] {
    while (!release.load()) std::this_thread::yield();
  });
  auto record = [&](int tag) {
    return [&, tag] {
      const std::lock_guard<std::mutex> lock(mu);
      order.push_back(tag);
    };
  };
  // Enqueued worst-first: low, normal (default), high.
  pool.submit(TaskPriority::kLow, record(3));
  pool.submit(record(2));
  pool.submit(TaskPriority::kHigh, record(1));
  pool.submit(TaskPriority::kLow, record(3));
  pool.submit(TaskPriority::kHigh, record(1));
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 1, 2, 3, 3}));
}

TEST(CancellationToken, CopiesShareOneStickyFlag) {
  CancellationToken token;
  EXPECT_FALSE(token.stop_requested());
  ASSERT_NE(token.flag(), nullptr);
  EXPECT_FALSE(token.flag()->load());

  CancellationToken copy = token;
  copy.request_stop();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_TRUE(copy.stop_requested());
  EXPECT_TRUE(token.flag()->load());

  // A fresh token is independent of the fired one.
  const CancellationToken fresh;
  EXPECT_FALSE(fresh.stop_requested());
}

TEST(CancellationToken, FlagPlugsIntoCheckpointStop) {
  // The raw pointer form is what CheckpointConfig::stop_flag consumes;
  // firing the token must be visible through that pointer from another
  // thread (the supervisor fires, the simulation polls).
  CancellationToken token;
  const std::atomic<bool>* flag = token.flag();
  std::thread firer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.request_stop();
  });
  while (!flag->load(std::memory_order_acquire)) std::this_thread::yield();
  firer.join();
  EXPECT_TRUE(token.stop_requested());
}

TEST(DefaultThreadCount, HonorsEnvironmentOverride) {
  ASSERT_EQ(::setenv("NOCS_THREADS", "3", 1), 0);
  EXPECT_EQ(default_thread_count(), 3);
  ASSERT_EQ(::setenv("NOCS_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(default_thread_count(), 1);  // garbage falls back to hardware
  ASSERT_EQ(::unsetenv("NOCS_THREADS"), 0);
  EXPECT_GE(default_thread_count(), 1);
}

// --- deterministic per-task seeds ----------------------------------------

TEST(TaskSeed, IndexesTheSplitMixStream) {
  // task_seed(base, i) must equal the (i+1)-th output of SplitMix64(base):
  // that is what makes the O(1) indexed form order-independent.
  const std::uint64_t base = 0xfeedfaceULL;
  SplitMix64 stream(base);
  for (std::uint64_t i = 0; i < 32; ++i)
    EXPECT_EQ(task_seed(base, i), stream.next()) << "index " << i;
}

TEST(TaskSeed, DistinctAcrossTasksAndBases) {
  std::vector<std::uint64_t> seen;
  for (std::uint64_t base : {1ULL, 2ULL, 99ULL})
    for (std::uint64_t i = 0; i < 64; ++i) seen.push_back(task_seed(base, i));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

// --- golden determinism of the sweep drivers -----------------------------

void expect_identical(const noc::SimResults& a, const noc::SimResults& b) {
  // Bit-identical, not approximately equal: the parallel runner must
  // reproduce the serial results exactly.
  EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
  EXPECT_EQ(a.avg_network_latency, b.avg_network_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.packets_ejected, b.packets_ejected);
  EXPECT_EQ(a.accepted_rate, b.accepted_rate);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.counters.buffer_writes, b.counters.buffer_writes);
  EXPECT_EQ(a.counters.xbar_traversals, b.counters.xbar_traversals);
  EXPECT_EQ(a.counters.active_cycles, b.counters.active_cycles);
  EXPECT_EQ(a.counters.gated_cycles, b.counters.gated_cycles);
  EXPECT_EQ(a.counters.idle_active_cycles, b.counters.idle_active_cycles);
}

noc::SweepRunner sprint_runner(noc::SimConfig sim) {
  noc::NetworkParams p;
  p.width = 4;
  p.height = 4;
  return [p, sim](const noc::SweepTask& task) {
    sprint::NetworkBundle b =
        sprint::make_noc_sprinting_network(p, 8, "uniform", task.seed);
    noc::SimConfig point_sim = sim;
    point_sim.injection_rate = task.injection_rate;
    return noc::run_simulation(*b.network, point_sim);
  };
}

TEST(ParallelSweep, InjectionSweepMatchesSerialBitForBit) {
  noc::SimConfig sim;
  sim.warmup = 300;
  sim.measure = 1500;
  const std::vector<double> rates = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  const noc::SweepRunner run = sprint_runner(sim);

  // threads=1 IS the serial loop (ParallelFor runs inline); threads=4 must
  // reproduce it exactly thanks to per-task networks and indexed seeds.
  const auto serial = noc::parallel_sweep_injection(run, rates, 11, 1);
  const auto parallel = noc::parallel_sweep_injection(run, rates, 11, 4);

  ASSERT_EQ(serial.size(), rates.size());
  ASSERT_EQ(parallel.size(), rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    EXPECT_EQ(serial[i].injection_rate, rates[i]);
    EXPECT_EQ(parallel[i].injection_rate, rates[i]);
    expect_identical(serial[i].results, parallel[i].results);
  }
}

TEST(ParallelSweep, SamplerMatchesSerialBitForBit) {
  // The fig11 methodology: N random-mapping samples at one rate.
  noc::SimConfig sim;
  sim.warmup = 300;
  sim.measure = 1500;
  noc::NetworkParams p;
  p.width = 4;
  p.height = 4;
  const noc::SweepRunner run = [p, sim](const noc::SweepTask& task) {
    sprint::NetworkBundle b =
        sprint::make_full_sprinting_network(p, 8, "uniform", task.seed);
    noc::SimConfig point_sim = sim;
    point_sim.injection_rate = task.injection_rate;
    return noc::run_simulation(*b.network, point_sim);
  };

  const auto serial = noc::parallel_samples(run, 6, 0.15, 23, 1);
  const auto parallel = noc::parallel_samples(run, 6, 0.15, 23, 4);

  ASSERT_EQ(serial.size(), 6u);
  ASSERT_EQ(parallel.size(), 6u);
  for (std::size_t s = 0; s < serial.size(); ++s)
    expect_identical(serial[s], parallel[s]);
}

TEST(ParallelSweep, TasksReceiveIndexedSeeds) {
  std::vector<noc::SweepTask> seen(3);
  const noc::SweepRunner run = [&](const noc::SweepTask& task) {
    seen[task.index] = task;
    return noc::SimResults{};
  };
  noc::parallel_sweep_injection(run, {0.1, 0.2, 0.3}, 7, 1);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].index, i);
    EXPECT_EQ(seen[i].seed, task_seed(7, i));
  }
  EXPECT_EQ(seen[1].injection_rate, 0.2);
}

}  // namespace
}  // namespace nocs
