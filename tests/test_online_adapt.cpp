// Tests for the online hill-climbing sprint-level controller.
#include <gtest/gtest.h>

#include "cmp/perf_model.hpp"
#include "common/rng.hpp"
#include "sprint/online_adapt.hpp"

namespace nocs::sprint {
namespace {

/// Drives the controller with noise-free observations from the perf model
/// for `bursts` bursts; returns the final level.
int drive(OnlineLevelController& ctl, const cmp::PerfModel& pm,
          const cmp::WorkloadParams& w, int bursts) {
  for (int i = 0; i < bursts; ++i)
    ctl.observe(pm.exec_time(w, ctl.next_level()));
  return ctl.next_level();
}

TEST(OnlineAdapt, ConvergesNearOptimumForWholeSuite) {
  const cmp::PerfModel pm(16);
  for (const auto& w : cmp::parsec_suite(16)) {
    OnlineLevelController ctl(16, /*start=*/1, /*step=*/1,
                              /*reprobe=*/0);
    const int final_level = drive(ctl, pm, w, 40);
    EXPECT_TRUE(ctl.converged()) << w.name;
    // Step-1 hill climbing on a unimodal curve finds the exact optimum.
    EXPECT_EQ(final_level, pm.optimal_level(w)) << w.name;
  }
}

TEST(OnlineAdapt, Step2LandsWithinOneStep) {
  const cmp::PerfModel pm(16);
  for (const auto& w : cmp::parsec_suite(16)) {
    OnlineLevelController ctl(16, 1, /*step=*/2, 0);
    const int final_level = drive(ctl, pm, w, 40);
    EXPECT_LE(std::abs(final_level - pm.optimal_level(w)), 2) << w.name;
  }
}

TEST(OnlineAdapt, ConvergesFromAboveToo) {
  const cmp::PerfModel pm(16);
  const auto suite = cmp::parsec_suite(16);
  const auto& dedup = cmp::find_workload(suite, "dedup");  // optimum 4
  OnlineLevelController ctl(16, /*start=*/16, 1, 0);
  EXPECT_EQ(drive(ctl, pm, dedup, 40), 4);
}

TEST(OnlineAdapt, TracksPhaseChangeWithReprobing) {
  const cmp::PerfModel pm(16);
  const auto suite = cmp::parsec_suite(16);
  const auto& dedup = cmp::find_workload(suite, "dedup");         // opt 4
  const auto& bs = cmp::find_workload(suite, "blackscholes");     // opt 16
  OnlineLevelController ctl(16, 1, 1, /*reprobe=*/4);
  drive(ctl, pm, dedup, 30);
  EXPECT_EQ(drive(ctl, pm, bs, 80), 16);  // adapts after the phase change
}

TEST(OnlineAdapt, WithoutReprobingStaysLocked) {
  const cmp::PerfModel pm(16);
  const auto suite = cmp::parsec_suite(16);
  const auto& dedup = cmp::find_workload(suite, "dedup");
  OnlineLevelController ctl(16, 1, 1, /*reprobe=*/0);
  drive(ctl, pm, dedup, 30);
  ASSERT_TRUE(ctl.converged());
  const int locked = ctl.next_level();
  // Feed wildly different observations: the locked controller ignores them.
  for (int i = 0; i < 10; ++i) ctl.observe(0.01);
  EXPECT_EQ(ctl.next_level(), locked);
}

TEST(OnlineAdapt, RobustToMeasurementNoise) {
  const cmp::PerfModel pm(16);
  const auto suite = cmp::parsec_suite(16);
  const auto& vips = cmp::find_workload(suite, "vips");  // opt 6
  Rng rng(2);
  OnlineLevelController ctl(16, 1, 1, 0);
  for (int i = 0; i < 60; ++i) {
    const double truth = pm.exec_time(vips, ctl.next_level());
    ctl.observe(truth * (1.0 + 0.01 * (2.0 * rng.uniform() - 1.0)));
  }
  EXPECT_LE(std::abs(ctl.next_level() - 6), 2);
}

TEST(OnlineAdapt, LevelsAlwaysInRange) {
  const cmp::PerfModel pm(8);
  cmp::WorkloadParams w;
  w.name = "serial";
  w.serial_frac = 0.95;
  w.alpha = 0.05;
  w.injection_rate = 0.1;
  OnlineLevelController ctl(8, 8, 3, 2);
  for (int i = 0; i < 50; ++i) {
    const int level = ctl.next_level();
    ASSERT_GE(level, 1);
    ASSERT_LE(level, 8);
    ctl.observe(pm.exec_time(w, level));
  }
  EXPECT_LE(ctl.next_level(), 2);  // serial workload drives it down
}

TEST(OnlineAdapt, RejectsBadConstruction) {
  EXPECT_DEATH(OnlineLevelController(16, 0), "precondition");
  EXPECT_DEATH(OnlineLevelController(16, 17), "precondition");
  EXPECT_DEATH(OnlineLevelController(16, 1, 0), "precondition");
}

TEST(OnlineAdapt, RejectsNonPositiveObservation) {
  OnlineLevelController ctl(16);
  EXPECT_DEATH(ctl.observe(0.0), "precondition");
}

}  // namespace
}  // namespace nocs::sprint
