#!/usr/bin/env bash
# Fails when a Config key accepted anywhere in the codebase (every
# get_string/get_int/get_double/get_bool call site in src/, examples/, and
# bench/) is missing from the reference table in docs/CONFIG.md.  Keeps the
# documentation complete by construction: adding a key without documenting
# it breaks CI.
#
# Usage: scripts/check_config_docs.sh
set -euo pipefail

cd "$(dirname "$0")/.."

doc=docs/CONFIG.md
if [[ ! -f "$doc" ]]; then
  echo "check_config_docs: $doc missing"
  exit 1
fi

keys=$(grep -rhoE 'get_(string|int|double|bool)\("[a-z_0-9]+"' \
         src examples bench |
       sed -E 's/.*\("([a-z_0-9]+)"/\1/' | sort -u)

status=0
for key in $keys; do
  # Keys are listed in the table as `key=` (backquoted, with the trailing
  # equals sign users type on the command line).
  if ! grep -q "\`${key}=\`" "$doc"; then
    echo "UNDOCUMENTED CONFIG KEY: ${key} (add a \`${key}=\` row to $doc)"
    status=1
  fi
done

if [[ $status -eq 0 ]]; then
  echo "check_config_docs: every accepted key is documented"
fi
exit $status
