#!/usr/bin/env bash
# Lints every topology example file shipped in docs/: each must parse
# under the documented text format (docs/TOPOLOGY.md), validate as a
# connected graph, and pass the up*/down* channel-dependency deadlock
# check at every sprint level.  Uses the topo_lint binary; pass the build
# directory as $1 (default: build).
#
# Usage: scripts/check_topo_examples.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="${1:-build}"
lint="$build_dir/examples/topo_lint"

if [[ ! -x "$lint" ]]; then
  echo "check_topo_examples: $lint not built (cmake --build $build_dir --target topo_lint)"
  exit 1
fi

shopt -s nullglob
files=(docs/examples/*.topo)
if [[ ${#files[@]} -eq 0 ]]; then
  echo "check_topo_examples: no docs/examples/*.topo files found"
  exit 1
fi

"$lint" "${files[@]}"
echo "check_topo_examples: ${#files[@]} example file(s) parse and are deadlock-free"
