#!/usr/bin/env bash
# End-to-end crash-safety smoke test of the campaign daemon (mode=serve):
#
#   1. run a sweep campaign directly (mode=sweep report=) as ground truth;
#   2. run the same campaign through a clean daemon and capture the
#      cached-resubmission reply (the canonical result bytes);
#   3. start a fresh daemon, submit the campaign, `kill -9` the daemon
#      mid-flight, restart it on the same state directory, and wait for
#      the recovered job to finish;
#   4. assert the resumed daemon's cached reply is byte-identical to the
#      clean daemon's, and that the per-point latencies match the direct
#      run digit for digit;
#   5. run a long simulation at low priority on a single worker, preempt
#      it with a high-priority job mid-run, and assert the preempted
#      job's result is byte-identical to an unpreempted control run;
#   6. drive a tiny-threshold ledger through auto-compaction, kill -9
#      the daemon, plant a stale compaction temp file, restart, and
#      assert the compacted ledger replays to the same cached bytes.
#
# Usage: scripts/serve_smoke.sh [build-dir]     (default: build)
#
# Exits non-zero on the first failed step.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
CLI="${BUILD}/examples/nocsprint_cli"
CLIENT="${BUILD}/examples/serve_client"

for bin in "$CLI" "$CLIENT"; do
  if [[ ! -x "$bin" ]]; then
    echo "serve_smoke: missing binary $bin (build the examples first)"
    exit 1
  fi
done

work=$(mktemp -d)
daemon_pid=""
cleanup() {
  [[ -n "$daemon_pid" ]] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

# The campaign: 10 sweep points — long enough that kill -9 lands
# mid-flight, short enough for CI.
CAMPAIGN=(kind=sweep level=8 rates=0.05:0.05:0.5 seed=7)
DIRECT=(mode=sweep level=8 rates=0.05:0.05:0.5 seed=7)

start_daemon() {  # start_daemon <state-dir> <log> [extra daemon args...]
  local dir="$1" log="$2"
  shift 2
  "$CLI" mode=serve serve_dir="$dir" serve_port=0 \
    serve_port_file="$dir/port" serve_workers=2 "$@" >"$log" 2>&1 &
  daemon_pid=$!
}

wait_port() {  # wait_port <state-dir>
  for _ in $(seq 1 100); do
    [[ -s "$1/port" ]] && return 0
    sleep 0.1
  done
  echo "serve_smoke: daemon never wrote $1/port"
  return 1
}

latencies() {  # latencies <file> — per-point latency digits, in order
  grep -oE '"avg_packet_latency": ?[0-9eE+.-]+' "$1" | tr -d ' '
}

echo "==== direct run (ground truth) ===="
"$CLI" "${DIRECT[@]}" report="$work/direct.json" >/dev/null

echo "==== clean daemon run ===="
start_daemon "$work/clean" "$work/clean.log"
wait_port "$work/clean"
"$CLIENT" port_file="$work/clean/port" op=submit "${CAMPAIGN[@]}" \
  wait=true timeout_ms=120000 >"$work/clean_wait.txt"
grep -q '"state":"done"' "$work/clean_wait.txt" || {
  echo "serve_smoke: clean campaign did not finish"; cat "$work/clean_wait.txt"
  exit 1
}
# Identical resubmission: served from the cache, zero cycles.
"$CLIENT" port_file="$work/clean/port" op=submit "${CAMPAIGN[@]}" \
  >"$work/clean_cached.txt"
grep -q '"cached":true' "$work/clean_cached.txt" || {
  echo "serve_smoke: resubmission was not served from the cache"
  cat "$work/clean_cached.txt"; exit 1
}
"$CLIENT" port_file="$work/clean/port" op=drain >/dev/null
wait "$daemon_pid"
daemon_pid=""

echo "==== crash run: submit, kill -9 mid-campaign ===="
start_daemon "$work/crash" "$work/crash1.log"
wait_port "$work/crash"
"$CLIENT" port_file="$work/crash/port" op=submit "${CAMPAIGN[@]}" \
  >"$work/crash_submit.txt"
grep -q '"job":"job-1"' "$work/crash_submit.txt" || {
  echo "serve_smoke: submit not accepted"; cat "$work/crash_submit.txt"
  exit 1
}
sleep 0.4
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

echo "==== restart on the same ledger, wait for recovery ===="
rm -f "$work/crash/port"
start_daemon "$work/crash" "$work/crash2.log"
wait_port "$work/crash"
"$CLIENT" port_file="$work/crash/port" op=wait job=job-1 \
  timeout_ms=120000 >"$work/crash_wait.txt"
grep -q '"state":"done"' "$work/crash_wait.txt" || {
  echo "serve_smoke: recovered campaign did not finish"
  cat "$work/crash_wait.txt" "$work/crash2.log"; exit 1
}
"$CLIENT" port_file="$work/crash/port" op=submit "${CAMPAIGN[@]}" \
  >"$work/crash_cached.txt"
grep -q '"cached":true' "$work/crash_cached.txt" || {
  echo "serve_smoke: recovered result did not seed the cache"
  cat "$work/crash_cached.txt"; exit 1
}
"$CLIENT" port_file="$work/crash/port" op=drain >/dev/null
wait "$daemon_pid"
daemon_pid=""

echo "==== bit-identity checks ===="
# The cached replies carry the full campaign result: the kill -9 run must
# reproduce the uninterrupted run byte for byte.
if ! cmp -s "$work/clean_cached.txt" "$work/crash_cached.txt"; then
  echo "serve_smoke: resumed result differs from the clean daemon run"
  diff "$work/clean_cached.txt" "$work/crash_cached.txt" || true
  exit 1
fi
# And both must match the direct mode=sweep run digit for digit.
latencies "$work/direct.json" >"$work/direct_lat.txt"
latencies "$work/crash_cached.txt" >"$work/serve_lat.txt"
if ! cmp -s "$work/direct_lat.txt" "$work/serve_lat.txt"; then
  echo "serve_smoke: daemon latencies differ from the direct run"
  paste "$work/direct_lat.txt" "$work/serve_lat.txt" || true
  exit 1
fi
[[ -s "$work/direct_lat.txt" ]] || {
  echo "serve_smoke: no latencies extracted"; exit 1
}

echo "==== preemption run: high-priority job interrupts a long simulation ===="
# The sweep campaign finishes too quickly on a fast machine to preempt
# reliably, so this phase uses a long kind=simulate job (~1.5 s).  First
# a clean control run through its own daemon captures the canonical
# bytes; then one worker runs the same job at low priority, a
# high-priority submission evicts it mid-run (the poll on "cycles"
# guarantees it is genuinely simulating), it checkpoints, resumes, and
# must still produce the control bytes.
SIM=(kind=simulate level=8 seed=7 warmup=2000 measure=800000 injection=0.2)
start_daemon "$work/preclean" "$work/preclean.log" serve_workers=1
wait_port "$work/preclean"
"$CLIENT" port_file="$work/preclean/port" op=submit "${SIM[@]}" \
  wait=true timeout_ms=120000 >"$work/preclean_wait.txt"
grep -q '"state":"done"' "$work/preclean_wait.txt" || {
  echo "serve_smoke: control simulation did not finish"
  cat "$work/preclean_wait.txt" "$work/preclean.log"; exit 1
}
"$CLIENT" port_file="$work/preclean/port" op=submit "${SIM[@]}" \
  >"$work/preclean_cached.txt"
"$CLIENT" port_file="$work/preclean/port" op=drain >/dev/null
wait "$daemon_pid"
daemon_pid=""

start_daemon "$work/preempt" "$work/preempt.log" serve_workers=1
wait_port "$work/preempt"
"$CLIENT" port_file="$work/preempt/port" op=submit "${SIM[@]}" \
  priority=low >"$work/preempt_submit.txt"
grep -q '"job":"job-1"' "$work/preempt_submit.txt" || {
  echo "serve_smoke: low-priority submit not accepted"
  cat "$work/preempt_submit.txt"; exit 1
}
# Wait until the simulation is demonstrably running (reported cycles >
# 0), so the high-priority submission below always has a victim.
for _ in $(seq 1 200); do
  "$CLIENT" port_file="$work/preempt/port" op=job job=job-1 \
    >"$work/preempt_poll.txt" || true
  grep -qE '"cycles":[1-9]' "$work/preempt_poll.txt" && break
  sleep 0.05
done
grep -qE '"cycles":[1-9]' "$work/preempt_poll.txt" || {
  echo "serve_smoke: low-priority simulation never reported progress"
  cat "$work/preempt_poll.txt" "$work/preempt.log"; exit 1
}
"$CLIENT" port_file="$work/preempt/port" op=submit kind=selftest tasks=1 \
  sleep_ms=1 priority=high wait=true timeout_ms=60000 \
  >"$work/preempt_high.txt"
grep -q '"state":"done"' "$work/preempt_high.txt" || {
  echo "serve_smoke: high-priority job did not finish"
  cat "$work/preempt_high.txt"; exit 1
}
"$CLIENT" port_file="$work/preempt/port" op=wait job=job-1 \
  timeout_ms=120000 >"$work/preempt_wait.txt"
grep -q '"state":"done"' "$work/preempt_wait.txt" || {
  echo "serve_smoke: preempted simulation did not finish"
  cat "$work/preempt_wait.txt" "$work/preempt.log"; exit 1
}
preemptions=$("$CLIENT" port_file="$work/preempt/port" op=status |
  grep -oE '"preemptions":[0-9]+' | cut -d: -f2)
if [[ "${preemptions:-0}" -lt 1 ]]; then
  echo "serve_smoke: expected at least one preemption, saw '${preemptions:-none}'"
  exit 1
fi
"$CLIENT" port_file="$work/preempt/port" op=submit "${SIM[@]}" \
  >"$work/preempt_cached.txt"
if ! cmp -s "$work/preclean_cached.txt" "$work/preempt_cached.txt"; then
  echo "serve_smoke: preempted-then-resumed result differs from the control"
  diff "$work/preclean_cached.txt" "$work/preempt_cached.txt" || true
  exit 1
fi
"$CLIENT" port_file="$work/preempt/port" op=drain >/dev/null
wait "$daemon_pid"
daemon_pid=""

echo "==== compaction run: tiny threshold, kill -9, stale temp file ===="
start_daemon "$work/compact" "$work/compact1.log" \
  serve_ledger_compact_bytes=4096
wait_port "$work/compact"
for i in 1 2 3 4 5 6; do
  "$CLIENT" port_file="$work/compact/port" op=submit kind=selftest \
    tasks=4 sleep_ms="$i" wait=true timeout_ms=60000 >/dev/null
done
compactions=$("$CLIENT" port_file="$work/compact/port" op=status |
  grep -oE '"compactions":[0-9]+' | cut -d: -f2)
if [[ "${compactions:-0}" -lt 1 ]]; then
  echo "serve_smoke: ledger never compacted (saw '${compactions:-none}')"
  exit 1
fi
"$CLIENT" port_file="$work/compact/port" op=submit kind=selftest \
  tasks=4 sleep_ms=1 >"$work/compact_cached_before.txt"
grep -q '"cached":true' "$work/compact_cached_before.txt" || {
  echo "serve_smoke: compacted ledger lost a finished job pre-kill"
  cat "$work/compact_cached_before.txt"; exit 1
}
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
# A crash inside a *later* compaction would leave a temp file; plant a
# garbage one to prove startup sweeps it and replays the real log.
echo "interrupted-compaction-garbage" >"$work/compact/ledger.nsrl.compact.tmp"
rm -f "$work/compact/port"
start_daemon "$work/compact" "$work/compact2.log" \
  serve_ledger_compact_bytes=4096
wait_port "$work/compact"
"$CLIENT" port_file="$work/compact/port" op=submit kind=selftest \
  tasks=4 sleep_ms=1 >"$work/compact_cached_after.txt"
if ! cmp -s "$work/compact_cached_before.txt" "$work/compact_cached_after.txt"; then
  echo "serve_smoke: compacted ledger replayed differently after kill -9"
  diff "$work/compact_cached_before.txt" "$work/compact_cached_after.txt" || true
  exit 1
fi
if [[ -e "$work/compact/ledger.nsrl.compact.tmp" ]]; then
  echo "serve_smoke: stale compaction temp file survived restart"
  exit 1
fi
"$CLIENT" port_file="$work/compact/port" op=drain >/dev/null
wait "$daemon_pid"
daemon_pid=""

echo "serve_smoke: crash-resumed campaign is bit-identical to the direct run"
echo "serve_smoke: preempted simulation matched byte-for-byte; compaction survived kill -9"
