#!/usr/bin/env bash
# End-to-end crash-safety smoke test of the campaign daemon (mode=serve):
#
#   1. run a sweep campaign directly (mode=sweep report=) as ground truth;
#   2. run the same campaign through a clean daemon and capture the
#      cached-resubmission reply (the canonical result bytes);
#   3. start a fresh daemon, submit the campaign, `kill -9` the daemon
#      mid-flight, restart it on the same state directory, and wait for
#      the recovered job to finish;
#   4. assert the resumed daemon's cached reply is byte-identical to the
#      clean daemon's, and that the per-point latencies match the direct
#      run digit for digit.
#
# Usage: scripts/serve_smoke.sh [build-dir]     (default: build)
#
# Exits non-zero on the first failed step.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
CLI="${BUILD}/examples/nocsprint_cli"
CLIENT="${BUILD}/examples/serve_client"

for bin in "$CLI" "$CLIENT"; do
  if [[ ! -x "$bin" ]]; then
    echo "serve_smoke: missing binary $bin (build the examples first)"
    exit 1
  fi
done

work=$(mktemp -d)
daemon_pid=""
cleanup() {
  [[ -n "$daemon_pid" ]] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

# The campaign: 10 sweep points — long enough that kill -9 lands
# mid-flight, short enough for CI.
CAMPAIGN=(kind=sweep level=8 rates=0.05:0.05:0.5 seed=7)
DIRECT=(mode=sweep level=8 rates=0.05:0.05:0.5 seed=7)

start_daemon() {  # start_daemon <state-dir> <log>
  "$CLI" mode=serve serve_dir="$1" serve_port=0 \
    serve_port_file="$1/port" serve_workers=2 >"$2" 2>&1 &
  daemon_pid=$!
}

wait_port() {  # wait_port <state-dir>
  for _ in $(seq 1 100); do
    [[ -s "$1/port" ]] && return 0
    sleep 0.1
  done
  echo "serve_smoke: daemon never wrote $1/port"
  return 1
}

latencies() {  # latencies <file> — per-point latency digits, in order
  grep -oE '"avg_packet_latency": ?[0-9eE+.-]+' "$1" | tr -d ' '
}

echo "==== direct run (ground truth) ===="
"$CLI" "${DIRECT[@]}" report="$work/direct.json" >/dev/null

echo "==== clean daemon run ===="
start_daemon "$work/clean" "$work/clean.log"
wait_port "$work/clean"
"$CLIENT" port_file="$work/clean/port" op=submit "${CAMPAIGN[@]}" \
  wait=true timeout_ms=120000 >"$work/clean_wait.txt"
grep -q '"state":"done"' "$work/clean_wait.txt" || {
  echo "serve_smoke: clean campaign did not finish"; cat "$work/clean_wait.txt"
  exit 1
}
# Identical resubmission: served from the cache, zero cycles.
"$CLIENT" port_file="$work/clean/port" op=submit "${CAMPAIGN[@]}" \
  >"$work/clean_cached.txt"
grep -q '"cached":true' "$work/clean_cached.txt" || {
  echo "serve_smoke: resubmission was not served from the cache"
  cat "$work/clean_cached.txt"; exit 1
}
"$CLIENT" port_file="$work/clean/port" op=drain >/dev/null
wait "$daemon_pid"
daemon_pid=""

echo "==== crash run: submit, kill -9 mid-campaign ===="
start_daemon "$work/crash" "$work/crash1.log"
wait_port "$work/crash"
"$CLIENT" port_file="$work/crash/port" op=submit "${CAMPAIGN[@]}" \
  >"$work/crash_submit.txt"
grep -q '"job":"job-1"' "$work/crash_submit.txt" || {
  echo "serve_smoke: submit not accepted"; cat "$work/crash_submit.txt"
  exit 1
}
sleep 0.4
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

echo "==== restart on the same ledger, wait for recovery ===="
rm -f "$work/crash/port"
start_daemon "$work/crash" "$work/crash2.log"
wait_port "$work/crash"
"$CLIENT" port_file="$work/crash/port" op=wait job=job-1 \
  timeout_ms=120000 >"$work/crash_wait.txt"
grep -q '"state":"done"' "$work/crash_wait.txt" || {
  echo "serve_smoke: recovered campaign did not finish"
  cat "$work/crash_wait.txt" "$work/crash2.log"; exit 1
}
"$CLIENT" port_file="$work/crash/port" op=submit "${CAMPAIGN[@]}" \
  >"$work/crash_cached.txt"
grep -q '"cached":true' "$work/crash_cached.txt" || {
  echo "serve_smoke: recovered result did not seed the cache"
  cat "$work/crash_cached.txt"; exit 1
}
"$CLIENT" port_file="$work/crash/port" op=drain >/dev/null
wait "$daemon_pid"
daemon_pid=""

echo "==== bit-identity checks ===="
# The cached replies carry the full campaign result: the kill -9 run must
# reproduce the uninterrupted run byte for byte.
if ! cmp -s "$work/clean_cached.txt" "$work/crash_cached.txt"; then
  echo "serve_smoke: resumed result differs from the clean daemon run"
  diff "$work/clean_cached.txt" "$work/crash_cached.txt" || true
  exit 1
fi
# And both must match the direct mode=sweep run digit for digit.
latencies "$work/direct.json" >"$work/direct_lat.txt"
latencies "$work/crash_cached.txt" >"$work/serve_lat.txt"
if ! cmp -s "$work/direct_lat.txt" "$work/serve_lat.txt"; then
  echo "serve_smoke: daemon latencies differ from the direct run"
  paste "$work/direct_lat.txt" "$work/serve_lat.txt" || true
  exit 1
fi
[[ -s "$work/direct_lat.txt" ]] || {
  echo "serve_smoke: no latencies extracted"; exit 1
}

echo "serve_smoke: crash-resumed campaign is bit-identical to the direct run"
