#!/usr/bin/env bash
# Fails when any relative markdown link in the user-facing docs points at a
# file that does not exist.  External links (http/https/mailto) and pure
# in-page anchors (#section) are skipped; a link's own #fragment is
# stripped before the existence check.
#
# Usage: scripts/check_docs_links.sh
set -euo pipefail

cd "$(dirname "$0")/.."

files=(README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md)
status=0

for f in "${files[@]}"; do
  [[ -f "$f" ]] || continue
  dir=$(dirname "$f")
  # Extract every markdown link target: [text](target)
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path="${target%%#*}"
    [[ -n "$path" ]] || continue
    if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
      echo "BROKEN LINK: $f -> $target"
      status=1
    fi
  done < <(grep -oE '\[[^]]*\]\([^)]+\)' "$f" |
           sed -E 's/\[[^]]*\]\(([^)]+)\)/\1/' |
           sed -E 's/[[:space:]]+"[^"]*"$//')
done

if [[ $status -eq 0 ]]; then
  echo "check_docs_links: all relative links resolve"
fi
exit $status
