#!/usr/bin/env bash
# Full build-and-test matrix: a Release build (what the benches and
# figures run as) and an AddressSanitizer build (guards the ring-buffer /
# calendar-wheel index arithmetic and the new fault/retransmission
# paths), each running the complete ctest suite.
#
# Usage: scripts/ci.sh [jobs]        (default: all cores)
#
# Exits non-zero on the first failing configure/build/test step.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_config() {
  local dir="$1"
  shift
  echo "==== configure ${dir} ($*) ===="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==== build ${dir} ===="
  cmake --build "${dir}" -j "${JOBS}"
  echo "==== test ${dir} ===="
  ctest --test-dir "${dir}" -j "${JOBS}" --output-on-failure
}

echo "==== docs checks ===="
scripts/check_docs_links.sh
scripts/check_config_docs.sh

run_config build-ci-release -DCMAKE_BUILD_TYPE=Release
run_config build-ci-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DNOCS_SANITIZE=address

echo "==== snapshot suite (explicit) ===="
ctest --test-dir build-ci-release -L snapshot --output-on-failure

echo "==== ci.sh: all configurations passed ===="
