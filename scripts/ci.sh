#!/usr/bin/env bash
# Full build-and-test matrix: a Release build (what the benches and
# figures run as) and an AddressSanitizer build (guards the ring-buffer /
# calendar-wheel index arithmetic and the new fault/retransmission
# paths), each running the complete ctest suite, plus a ThreadSanitizer
# build running the `parallel` label (the sharded barrier-synchronous
# tick and the sweep thread pool), and the campaign-daemon crash-recovery
# smoke test (scripts/serve_smoke.sh: kill -9, restart, bit-compare).
#
# Usage: scripts/ci.sh [jobs]        (default: all cores)
#
# Exits non-zero on the first failing configure/build/test step.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_config() {
  local dir="$1"
  shift
  echo "==== configure ${dir} ($*) ===="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==== build ${dir} ===="
  cmake --build "${dir}" -j "${JOBS}"
  echo "==== test ${dir} ===="
  ctest --test-dir "${dir}" -j "${JOBS}" --output-on-failure
}

# As run_config but only runs the tests carrying a ctest label (used for
# the ThreadSanitizer build, where the full suite would be needlessly
# slow — TSan only adds signal on the multi-threaded surface).
run_config_label() {
  local dir="$1" label="$2"
  shift 2
  echo "==== configure ${dir} ($*) ===="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==== build ${dir} ===="
  cmake --build "${dir}" -j "${JOBS}"
  echo "==== test ${dir} (-L ${label}) ===="
  ctest --test-dir "${dir}" -L "${label}" --output-on-failure
}

echo "==== docs checks ===="
scripts/check_docs_links.sh
scripts/check_config_docs.sh

run_config build-ci-release -DCMAKE_BUILD_TYPE=Release
run_config build-ci-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DNOCS_SANITIZE=address
# serve rides along under TSan: the scheduler's preemption, watch
# streaming, and progress atomics are thread-heavy by construction.
run_config_label build-ci-tsan 'parallel|serve' \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DNOCS_SANITIZE=thread

echo "==== snapshot suite (explicit) ===="
ctest --test-dir build-ci-release -L snapshot --output-on-failure

# The campaign-daemon suite under ASan (sockets, threads, and the ledger
# replay path are exactly where lifetime bugs would hide), then the
# end-to-end kill -9 smoke test against the Release build.
echo "==== serve suite under ASan ===="
ctest --test-dir build-ci-asan -L serve --output-on-failure

# The memory-traffic suite under ASan: controller queues, multicast-tree
# relaying, and the snapshot round trip are fresh pointer-heavy surface.
echo "==== mem suite under ASan ===="
ctest --test-dir build-ci-asan -L mem --output-on-failure

# The topology suite under ASan: graph construction, the file parser,
# up*/down* table building, and the channel-dependency deadlock walk
# are index-arithmetic-heavy fresh surface.
echo "==== topology suite under ASan ===="
ctest --test-dir build-ci-asan -L topology --output-on-failure

# The shipped topology example files must parse and be deadlock-free at
# every sprint level (docs/TOPOLOGY.md stays executable documentation).
echo "==== topology example lint ===="
scripts/check_topo_examples.sh build-ci-release

echo "==== serve crash-recovery smoke test ===="
scripts/serve_smoke.sh build-ci-release

echo "==== ci.sh: all configurations passed ===="
